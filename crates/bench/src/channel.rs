//! Channel transport microbenchmark — ring vs the retired Mutex channel.
//!
//! Measures the shim's lock-free ring channel (the transport every
//! threaded-runtime envelope crosses) against an in-crate copy of the
//! Mutex + Condvar implementation it replaced, on the same scenarios:
//!
//! * **SPSC** — one producer, one consumer (the shape of most topology
//!   edges: each bolt task owns its inbox);
//! * **MPMC** — two producers, two consumers (fan-in edges under a
//!   data-parallel front).
//!
//! Each scenario runs at burst sizes 1 / 8 / 128. Burst `b` moves `b`
//! messages per synchronisation point through the ring's `send_many` /
//! `recv_drain` endpoints; the Mutex baseline has no batch endpoints —
//! one lock acquisition per message is exactly the cost the rebuild
//! removed — so its per-message loop *is* its burst-`b` behaviour.
//!
//! The headline figure is the burst-128 SPSC speedup: 128 is the threaded
//! runtime's `max_batch`, so this ratio is what the e2e flush path sees.
//! On a single-core box (where e2e scaling gates cannot run) the CI smoke
//! job regression-gates this ratio instead.
//!
//! [`ChannelReport::to_json`] emits one machine-readable line per run;
//! `experiments channel` *appends* it (stamped with git revision and
//! mode) to `BENCH_channel.json` at the workspace root — newest record
//! last, same trajectory convention as `BENCH_ingest.json`.

use crate::ingest::{git_rev, workspace_root};
use std::thread;
use std::time::Instant;

/// Messages per scenario pass.
const QUICK_MSGS: u64 = 200_000;
const FULL_MSGS: u64 = 1_000_000;

/// Channel capacity in messages, both transports. 256 slots keeps the
/// ring in its contended regime (producers outrun consumers and block)
/// without degenerating into lockstep.
const CAPACITY: usize = 256;

/// Interleaved repetitions per (scenario, burst, transport) cell; each
/// cell records its best pass, so machine noise hits both transports
/// equally.
const REPS: usize = 3;

/// Producer/consumer threads per side in the MPMC scenario.
const MPMC_SIDE: usize = 2;

/// One (scenario, burst) measurement pair.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// "spsc" or "mpmc".
    pub scenario: &'static str,
    /// Messages moved per synchronisation point on the ring side.
    pub burst: usize,
    /// Ring transport throughput, messages/sec.
    pub ring_msgs_per_sec: f64,
    /// Mutex baseline throughput, messages/sec.
    pub mutex_msgs_per_sec: f64,
    /// `ring_msgs_per_sec / mutex_msgs_per_sec`.
    pub speedup: f64,
}

/// One channel-transport measurement, serialisable to `BENCH_channel.json`.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Messages per scenario pass.
    pub messages: u64,
    /// Every (scenario, burst) cell measured.
    pub results: Vec<ScenarioResult>,
    /// The gated figure: SPSC speedup at burst 128 (the runtime's
    /// `max_batch`).
    pub speedup_spsc_128: f64,
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// "quick" (CI smoke) or "full".
    pub mode: &'static str,
}

impl ChannelReport {
    /// Machine-readable JSON (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut cells = String::from("[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                cells.push(',');
            }
            cells.push_str(&format!(
                concat!(
                    "{{\"scenario\":\"{}\",\"burst\":{},",
                    "\"ring_msgs_per_sec\":{:.1},\"mutex_msgs_per_sec\":{:.1},",
                    "\"speedup\":{:.3}}}"
                ),
                r.scenario, r.burst, r.ring_msgs_per_sec, r.mutex_msgs_per_sec, r.speedup
            ));
        }
        cells.push(']');
        format!(
            concat!(
                "{{\"bench\":\"channel\",\"messages\":{},\"results\":{},",
                "\"speedup_spsc_128\":{:.3},",
                "\"git_rev\":\"{}\",\"mode\":\"{}\"}}"
            ),
            self.messages, cells, self.speedup_spsc_128, self.git_rev, self.mode
        )
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "channel transport ({} msgs/pass, capacity {CAPACITY}, best of {REPS})\n",
            self.messages
        );
        out.push_str("  scenario  burst      ring msg/s     mutex msg/s   speedup\n");
        for r in &self.results {
            out.push_str(&format!(
                "  {:<8} {:>6} {:>15.0} {:>15.0} {:>8.2}x\n",
                r.scenario, r.burst, r.ring_msgs_per_sec, r.mutex_msgs_per_sec, r.speedup
            ));
        }
        out.push_str(&format!(
            "  headline (spsc, burst 128): {:.2}x the Mutex baseline\n",
            self.speedup_spsc_128
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Mutex + Condvar baseline — the transport this PR retired
// ---------------------------------------------------------------------------

/// The pre-rebuild channel, trimmed to what the measurement needs (bounded
/// `send`/`recv`, disconnect on drop): a `VecDeque` behind one `Mutex` with
/// a Condvar per direction, one lock acquisition per message on both ends.
/// Kept here so every recorded run measures its own baseline on the same
/// machine, exactly like the ingest bench's [`crate::ingest::BoxedCalculator`].
mod mutex_baseline {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Core<T> {
        inner: Mutex<Inner<T>>,
        send_cv: Condvar,
        recv_cv: Condvar,
        capacity: usize,
    }

    pub struct Sender<T> {
        core: Arc<Core<T>>,
    }

    pub struct Receiver<T> {
        core: Arc<Core<T>>,
    }

    impl<T> Sender<T> {
        /// Queue `msg`, blocking while the channel is at capacity; `Err`
        /// hands the message back once every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), T> {
            let mut inner = self.core.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(msg);
                }
                if inner.queue.len() >= self.core.capacity {
                    inner = self.core.send_cv.wait(inner).expect("channel poisoned");
                } else {
                    break;
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.core.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.core.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                core: self.core.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.core.inner.lock().expect("channel poisoned");
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.core.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` on a drained, disconnected
        /// channel.
        pub fn recv(&self) -> Result<T, ()> {
            let mut inner = self.core.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.core.send_cv.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(());
                }
                inner = self.core.recv_cv.wait(inner).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.core.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                core: self.core.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.core.inner.lock().expect("channel poisoned");
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.core.send_cv.notify_all();
            }
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let core = Arc::new(Core {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            send_cv: Condvar::new(),
            recv_cv: Condvar::new(),
            capacity: cap.max(1),
        });
        (Sender { core: core.clone() }, Receiver { core })
    }
}

// ---------------------------------------------------------------------------
// Scenario passes
// ---------------------------------------------------------------------------

/// Ring transport pass: `producers`×`consumers` threads move `n` messages
/// total, `burst` per synchronisation point. Returns elapsed seconds.
fn ring_pass(n: u64, burst: usize, producers: usize, consumers: usize) -> f64 {
    let (tx, rx) = crossbeam::channel::bounded::<u64>(CAPACITY);
    let per_producer = n / producers as u64;
    let start = Instant::now();
    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let tx = tx.clone();
            thread::spawn(move || {
                if burst <= 1 {
                    for i in 0..per_producer {
                        tx.send(i).expect("receiver vanished mid-bench");
                    }
                } else {
                    let mut i = 0u64;
                    while i < per_producer {
                        let take = burst.min((per_producer - i) as usize);
                        let batch: Vec<u64> = (i..i + take as u64).collect();
                        tx.send_many(batch).expect("receiver vanished mid-bench");
                        i += take as u64;
                    }
                }
                std::hint::black_box(p);
            })
        })
        .collect();
    drop(tx); // consumers see Disconnected once the producers finish
    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let rx = rx.clone();
            thread::spawn(move || {
                let mut seen = 0u64;
                let mut buf: Vec<u64> = Vec::with_capacity(burst);
                while let Ok(v) = rx.recv() {
                    std::hint::black_box(v);
                    seen += 1;
                    if burst > 1 {
                        seen += rx.recv_drain(&mut buf, burst - 1) as u64;
                        buf.clear();
                    }
                }
                seen
            })
        })
        .collect();
    drop(rx);
    for h in producer_handles {
        h.join().expect("producer panicked");
    }
    let seen: u64 = consumer_handles
        .into_iter()
        .map(|h| h.join().expect("consumer panicked"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(seen, per_producer * producers as u64, "ring lost messages");
    elapsed
}

/// Mutex baseline pass over the same scenario. The baseline has no batch
/// endpoints — its per-message loop is its burst behaviour at every size.
fn mutex_pass(n: u64, producers: usize, consumers: usize) -> f64 {
    let (tx, rx) = mutex_baseline::bounded::<u64>(CAPACITY);
    let per_producer = n / producers as u64;
    let start = Instant::now();
    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send(i).expect("receiver vanished mid-bench");
                }
                std::hint::black_box(p);
            })
        })
        .collect();
    drop(tx);
    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let rx = rx.clone();
            thread::spawn(move || {
                let mut seen = 0u64;
                while let Ok(v) = rx.recv() {
                    std::hint::black_box(v);
                    seen += 1;
                }
                seen
            })
        })
        .collect();
    drop(rx);
    for h in producer_handles {
        h.join().expect("producer panicked");
    }
    let seen: u64 = consumer_handles
        .into_iter()
        .map(|h| h.join().expect("consumer panicked"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(seen, per_producer * producers as u64, "mutex lost messages");
    elapsed
}

/// Run the full channel measurement. `quick` shrinks the per-scenario
/// message count for CI smoke runs; the recorded *ratios* are the same,
/// the absolute rates noisier.
pub fn measure(quick: bool) -> ChannelReport {
    let n = if quick { QUICK_MSGS } else { FULL_MSGS };
    let mut results = Vec::new();
    let mut speedup_spsc_128 = 0.0;
    for (scenario, producers, consumers) in [("spsc", 1, 1), ("mpmc", MPMC_SIDE, MPMC_SIDE)] {
        for burst in [1usize, 8, 128] {
            // interleaved best-of: ring, mutex, ring, mutex, …
            let (mut best_ring, mut best_mutex) = (f64::MAX, f64::MAX);
            for _ in 0..REPS {
                best_ring = best_ring.min(ring_pass(n, burst, producers, consumers));
                best_mutex = best_mutex.min(mutex_pass(n, producers, consumers));
            }
            let ring_msgs_per_sec = n as f64 / best_ring.max(1e-9);
            let mutex_msgs_per_sec = n as f64 / best_mutex.max(1e-9);
            let speedup = ring_msgs_per_sec / mutex_msgs_per_sec.max(1e-9);
            if scenario == "spsc" && burst == 128 {
                speedup_spsc_128 = speedup;
            }
            results.push(ScenarioResult {
                scenario,
                burst,
                ring_msgs_per_sec,
                mutex_msgs_per_sec,
                speedup,
            });
        }
    }
    ChannelReport {
        messages: n,
        results,
        speedup_spsc_128,
        git_rev: git_rev(),
        mode: if quick { "quick" } else { "full" },
    }
}

/// Append `report` as one JSON line to `BENCH_channel.json` in `dir` (the
/// workspace root by convention) — JSON-lines, newest record last, the
/// same trajectory convention as `BENCH_ingest.json`.
pub fn write_json(report: &ChannelReport, dir: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let path = dir.join("BENCH_channel.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all((report.to_json() + "\n").as_bytes())
}

/// The workspace root (re-exported convenience for the bin).
pub fn root() -> std::path::PathBuf {
    workspace_root()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_transports_conserve_messages_on_a_tiny_pass() {
        // the passes assert conservation internally; a tiny run of every
        // scenario/burst cell exercises those asserts without bench cost
        for (producers, consumers) in [(1, 1), (2, 2)] {
            for burst in [1, 8, 128] {
                ring_pass(2_000, burst, producers, consumers);
            }
            mutex_pass(2_000, producers, consumers);
        }
    }

    #[test]
    fn report_serialises_with_the_gated_figure() {
        let report = ChannelReport {
            messages: 10,
            results: vec![ScenarioResult {
                scenario: "spsc",
                burst: 128,
                ring_msgs_per_sec: 30.0,
                mutex_msgs_per_sec: 10.0,
                speedup: 3.0,
            }],
            speedup_spsc_128: 3.0,
            git_rev: "abc1234".into(),
            mode: "quick",
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"channel\""));
        assert!(json.contains("\"speedup_spsc_128\":3.000"));
        assert!(json.contains("\"burst\":128"));
    }
}
