//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <target> [options]
//!
//! targets:
//!   figs      Figures 3, 4, 5 and 6 (one shared parameter sweep)
//!   fig3      Communication                (avg notifications per tagset)
//!   fig4      Processing load              (Gini across Calculators)
//!   fig5      Jaccard error + coverage     (vs centralized baseline)
//!   fig6      Repartitions by cause
//!   fig7      Tagset connectivity          (window sizes 2/5/10/20 min)
//!   fig8      Communication over time      (default config, per algorithm)
//!   fig9      Load over time               (default config, per algorithm)
//!   theory    Section 5 analytic models
//!   ablation  DS vs DS+SCL hybrid (the §8.3 outlook, implemented)
//!   sketch    the §2 sketch-overhead argument, quantified
//!   ingest    per-tuple hot-path throughput (observe / route / e2e),
//!             recorded to BENCH_ingest.json at the workspace root
//!   channel   transport microbenchmark (ring vs Mutex baseline, SPSC /
//!             MPMC at bursts 1/8/128), recorded to BENCH_channel.json
//!   serve     serving layer under concurrent query load (reader qps,
//!             ingest slowdown), recorded to BENCH_serve.json
//!   all       Everything above
//!
//! options:
//!   --duration <secs>   event-time length per run        (default 240)
//!   --period <secs>     report period & window W         (default 60)
//!   --seed <n>          workload seed                    (default 42)
//!   --threaded          run on the threaded runtime      (default sim)
//!   --fig7-minutes <m>  stream length for fig7           (default 84)
//!   --out <dir>         also write JSON reports          (default results)
//!   --quick             shorthand for --duration 120 --fig7-minutes 42
//!   --degree <n>        front parallelism (spout shards + parser
//!                       instances) of the ingest e2e runs   (default 1)
//! ```

use setcorr_bench::harness::{self, Grid, Scale};
use setcorr_bench::{channel, ingest, serving};
use setcorr_topology::RunMode;
use std::io::Write;

/// Run the ingest hot-path measurement, append a run record (git rev +
/// mode) to `BENCH_ingest.json` at the workspace root (the perf trajectory
/// the CI smoke job uploads and diffs), and return the rendered summary.
fn run_ingest(quick: bool, degree: usize) -> String {
    eprintln!("measuring ingest hot-path throughput (quick={quick}, degree={degree})...");
    let report = ingest::measure(quick, degree);
    let root = ingest::workspace_root();
    match ingest::write_json(&report, &root) {
        Ok(()) => eprintln!(
            "appended run record ({}, {}) to {}",
            report.git_rev,
            report.mode,
            root.join("BENCH_ingest.json").display()
        ),
        Err(e) => eprintln!("could not write BENCH_ingest.json: {e}"),
    }
    report.render()
}

/// Run the channel transport microbenchmark, append a run record (git
/// rev + mode) to `BENCH_channel.json` at the workspace root, and return
/// the rendered summary.
fn run_channel(quick: bool) -> String {
    eprintln!("measuring channel transport vs the Mutex baseline (quick={quick})...");
    let report = channel::measure(quick);
    let root = channel::root();
    match channel::write_json(&report, &root) {
        Ok(()) => eprintln!(
            "appended run record ({}, {}) to {}",
            report.git_rev,
            report.mode,
            root.join("BENCH_channel.json").display()
        ),
        Err(e) => eprintln!("could not write BENCH_channel.json: {e}"),
    }
    report.render()
}

/// Run the serving query-load measurement, append a run record (git rev +
/// mode) to `BENCH_serve.json` at the workspace root, and return the
/// rendered summary.
fn run_serve(quick: bool) -> String {
    eprintln!("measuring serving under query load (quick={quick})...");
    let report = serving::measure(quick);
    let root = serving::root();
    match serving::write_json(&report, &root) {
        Ok(()) => eprintln!(
            "appended run record ({}, {}) to {}",
            report.git_rev,
            report.mode,
            root.join("BENCH_serve.json").display()
        ),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    report.render()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <figs|fig3..fig9|theory|all> [options]");
        std::process::exit(2);
    }
    let target = args[0].clone();
    let mut scale = Scale::default();
    let mut out_dir = Some("results".to_string());
    let mut quick = false;
    let mut degree = 1usize;

    let mut i = 1;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for option");
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--duration" => scale.duration_secs = take_value(&mut i).parse().expect("secs"),
            "--period" => scale.period_secs = take_value(&mut i).parse().expect("secs"),
            "--seed" => scale.seed = take_value(&mut i).parse().expect("seed"),
            "--fig7-minutes" => scale.fig7_minutes = take_value(&mut i).parse().expect("minutes"),
            "--threaded" => scale.mode = RunMode::Threaded,
            "--quick" => {
                scale.duration_secs = 120;
                scale.fig7_minutes = 42;
                quick = true;
            }
            "--degree" => degree = take_value(&mut i).parse().expect("degree"),
            "--out" => out_dir = Some(take_value(&mut i)),
            "--no-out" => out_dir = None,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let needs_grid = matches!(
        target.as_str(),
        "figs" | "fig3" | "fig4" | "fig5" | "fig6" | "fig8" | "fig9" | "all"
    );
    let grid = needs_grid.then(|| {
        eprintln!(
            "running the Figures 3-6 grid ({} runs, {}s event time each)...",
            harness::grid_points().len(),
            scale.duration_secs
        );
        Grid::compute(scale.clone(), true)
    });

    let mut rendered: Vec<(String, String)> = Vec::new();
    match target.as_str() {
        "fig3" => rendered.push(("fig3".into(), harness::fig3(grid.as_ref().unwrap()))),
        "fig4" => rendered.push(("fig4".into(), harness::fig4(grid.as_ref().unwrap()))),
        "fig5" => rendered.push(("fig5".into(), harness::fig5(grid.as_ref().unwrap()))),
        "fig6" => rendered.push(("fig6".into(), harness::fig6(grid.as_ref().unwrap()))),
        "figs" => {
            let g = grid.as_ref().unwrap();
            rendered.push(("fig3".into(), harness::fig3(g)));
            rendered.push(("fig4".into(), harness::fig4(g)));
            rendered.push(("fig5".into(), harness::fig5(g)));
            rendered.push(("fig6".into(), harness::fig6(g)));
        }
        "fig7" => rendered.push(("fig7".into(), harness::fig7(&scale))),
        "ablation" => rendered.push(("ablation".into(), harness::ablation(&scale))),
        "sketch" => rendered.push(("sketch".into(), harness::sketch_overhead(&scale))),
        "ingest" => rendered.push(("ingest".into(), run_ingest(quick, degree))),
        "channel" => rendered.push(("channel".into(), run_channel(quick))),
        "serve" => rendered.push(("serve".into(), run_serve(quick))),
        "fig8" => {
            let (f8, _) = harness::fig8_fig9(grid.as_ref().unwrap());
            rendered.push(("fig8".into(), f8));
        }
        "fig9" => {
            let (_, f9) = harness::fig8_fig9(grid.as_ref().unwrap());
            rendered.push(("fig9".into(), f9));
        }
        "theory" => rendered.push(("theory".into(), harness::theory())),
        "all" => {
            let g = grid.as_ref().unwrap();
            rendered.push(("fig3".into(), harness::fig3(g)));
            rendered.push(("fig4".into(), harness::fig4(g)));
            rendered.push(("fig5".into(), harness::fig5(g)));
            rendered.push(("fig6".into(), harness::fig6(g)));
            rendered.push(("fig7".into(), harness::fig7(&scale)));
            let (f8, f9) = harness::fig8_fig9(g);
            rendered.push(("fig8".into(), f8));
            rendered.push(("fig9".into(), f9));
            rendered.push(("theory".into(), harness::theory()));
            rendered.push(("ablation".into(), harness::ablation(&scale)));
            rendered.push(("sketch".into(), harness::sketch_overhead(&scale)));
            rendered.push(("ingest".into(), run_ingest(quick, degree)));
            rendered.push(("channel".into(), run_channel(quick)));
            rendered.push(("serve".into(), run_serve(quick)));
        }
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    }

    for (_, text) in &rendered {
        println!("{text}");
    }

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create output dir");
        if let Some(g) = &grid {
            let rows: Vec<String> = g
                .reports()
                .iter()
                .map(|r| format!("  {}", r.to_json()))
                .collect();
            let json = format!("[\n{}\n]\n", rows.join(",\n"));
            std::fs::write(format!("{dir}/grid.json"), json).expect("write grid.json");
        }
        for (name, text) in &rendered {
            let mut f =
                std::fs::File::create(format!("{dir}/{name}.txt")).expect("create figure file");
            f.write_all(text.as_bytes()).expect("write figure");
        }
        eprintln!("wrote {}/", dir);
    }
}
