//! Shared fixtures for benchmarks and the experiment harness.

use setcorr_core::PartitionInput;
use setcorr_model::{Document, TagSetStat};
use setcorr_workload::{Generator, WorkloadConfig};

/// Generate `n` documents with the default workload at `tps`, seeded.
pub fn stream(seed: u64, n: usize, tps: u64) -> Vec<Document> {
    let mut config = WorkloadConfig::with_seed(seed);
    config.tps = tps;
    Generator::new(config).take(n).collect()
}

/// Build a [`PartitionInput`] from the first `n` *tagged* documents of a
/// seeded default stream — the common partitioning-benchmark input.
pub fn window_input(seed: u64, n: usize) -> PartitionInput {
    let stats: Vec<TagSetStat> = Generator::new(WorkloadConfig::with_seed(seed))
        .filter(|d| d.is_tagged())
        .take(n)
        .map(|d| TagSetStat {
            tags: d.tags,
            count: 1,
        })
        .collect();
    PartitionInput::from_stats(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_respects_length_and_tps() {
        let docs = stream(1, 1000, 2600);
        assert_eq!(docs.len(), 1000);
        // 1000 docs at 2600 tps ≈ 384 ms of event time
        assert!(docs.last().unwrap().timestamp.millis() < 400);
    }

    #[test]
    fn window_input_is_tagged_only() {
        let input = window_input(2, 500);
        assert!(input.len() <= 500);
        assert!(input.total_docs >= input.len() as u64);
        assert!(input.stats.iter().all(|s| !s.tags.is_empty()));
    }
}
