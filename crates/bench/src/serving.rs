//! Query-load benchmark for the serving layer: N reader threads hammer the
//! snapshot store while the threaded topology ingests at full rate.
//!
//! Two symmetric passes over the same stream, both with the serving store
//! attached (so publication cost is on both sides and the recorded delta is
//! *reader* impact only):
//!
//! * **idle readers** — the reference ingest rate. The control threads
//!   wake on the same `READER_PAUSE` cadence as real readers but never
//!   touch the store: a placebo that equalizes scheduler and timer
//!   effects (on a virtualized single core, a periodic heartbeat alone
//!   measurably changes ingest throughput by keeping the vCPU resident),
//!   so the recorded slowdown isolates the serving work itself,
//! * **querying readers** — [`READERS`] concurrent threads acquiring
//!   snapshots and querying them (top-k, per-tag neighborhoods, exact
//!   lookups) until the stream drains.
//!
//! Readers are *paced*: each acquires a snapshot, issues a burst of
//! `QUERIES_PER_ACQUISITION` queries against it, then sleeps
//! `READER_PAUSE`. That models the motivating interactive workload (XRay:
//! many users polling associations) instead of a busy-spin, which on a
//! small box would measure pure CPU contention rather than the serving
//! layer's read-path cost. The recorded queries/sec is the *sustained* rate
//! under that pacing.
//!
//! [`ServeReport::to_json`] emits one machine-readable line per run;
//! `experiments serve` and the `serving` bench append it (stamped with git
//! revision and mode) to `BENCH_serve.json` at the workspace root — same
//! history convention as `BENCH_ingest.json`, newest record last.

use crate::fixtures;
use crate::ingest::workspace_root;
use setcorr_topology::{spawn_served, ExperimentConfig, RunMode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent reader threads in the read-load pass (acceptance bar: ≥ 4).
pub const READERS: usize = 4;

/// Queries per acquired snapshot (one burst per wake).
const QUERIES_PER_ACQUISITION: usize = 16;

/// Pause between bursts — the pacing that makes this an interactive-load
/// model rather than a CPU-contention measurement. 20 ms ≈ 50 snapshot
/// polls per reader per second, well above any dashboard's refresh rate;
/// unpaced readers on a small box would just measure CPU contention —
/// every cycle a reader burns is a cycle the single-core topology loses,
/// regardless of how the store is built.
const READER_PAUSE: Duration = Duration::from_millis(20);

/// Paired repetitions: each rep runs its control pass and its read-load
/// pass back-to-back, and the recorded slowdown is the *median* of the
/// per-rep ratios. Selecting the quiet and loaded minima independently
/// (the previous scheme) let uncorrelated machine noise pick a lucky
/// loaded rep against an unlucky control rep — the committed full-mode
/// record once claimed readers sped ingest up by 55%.
const REPS: usize = 3;

/// One serving-under-load measurement, serialisable to `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Documents ingested per pass.
    pub docs: u64,
    /// Concurrent reader threads in the read-load pass.
    pub readers: usize,
    /// Snapshots published during the recorded read-load pass.
    pub snapshots: u64,
    /// Reader snapshot acquisitions during the recorded read-load pass.
    pub acquisitions: u64,
    /// Queries the readers completed during the recorded read-load pass.
    pub queries: u64,
    /// Sustained reader throughput, queries/sec (under pacing).
    pub reader_qps: f64,
    /// Reference ingest rate: store attached, idle control readers (same
    /// wake cadence, no store traffic), docs/sec.
    pub ingest_docs_per_sec: f64,
    /// Ingest rate under full querying-reader load, docs/sec.
    pub ingest_docs_per_sec_read_load: f64,
    /// `1 − read_load/no_readers`, as a percentage (negative = faster,
    /// i.e. within noise). Acceptance bar: ≤ 10.
    pub ingest_slowdown_pct: f64,
    /// Seconds spent building + swapping snapshots in the recorded
    /// read-load pass (the writer-side cost of serving).
    pub snapshot_build_seconds: f64,
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// "quick" (CI smoke) or "full".
    pub mode: &'static str,
}

impl ServeReport {
    /// Machine-readable JSON line (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"serve\",\"docs\":{},\"readers\":{},",
                "\"snapshots\":{},\"acquisitions\":{},\"queries\":{},",
                "\"reader_qps\":{:.1},\"ingest_docs_per_sec\":{:.1},",
                "\"ingest_docs_per_sec_read_load\":{:.1},",
                "\"ingest_slowdown_pct\":{:.2},",
                "\"snapshot_build_seconds\":{:.4},",
                "\"git_rev\":\"{}\",\"mode\":\"{}\"}}"
            ),
            self.docs,
            self.readers,
            self.snapshots,
            self.acquisitions,
            self.queries,
            self.reader_qps,
            self.ingest_docs_per_sec,
            self.ingest_docs_per_sec_read_load,
            self.ingest_slowdown_pct,
            self.snapshot_build_seconds,
            self.git_rev,
            self.mode,
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            concat!(
                "serving under load ({} docs, {} paced readers)\n",
                "  ingest, idle readers (control)   {:>12.0} docs/s\n",
                "  ingest, under query load         {:>12.0} docs/s   ({:+.1}% slowdown)\n",
                "  reader throughput                {:>12.0} queries/s\n",
                "  snapshots published              {:>12}\n",
                "  snapshot acquisitions            {:>12}\n",
                "  snapshot build time              {:>12.4} s\n",
            ),
            self.docs,
            self.readers,
            self.ingest_docs_per_sec,
            self.ingest_docs_per_sec_read_load,
            self.ingest_slowdown_pct,
            self.reader_qps,
            self.snapshots,
            self.acquisitions,
            self.snapshot_build_seconds,
        )
    }
}

/// The benchmark topology configuration: the ingest bench's e2e shape, with
/// the centralized baseline off — it is a pure measurement artifact (about
/// a third of e2e wall time) and this bench measures serving impact, not
/// accuracy.
fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        k: 5,
        partitioners: 3,
        bootstrap_after: 2_000,
        report_period: setcorr_model::TimeDelta::from_secs(20),
        window: setcorr_model::WindowKind::Time(setcorr_model::TimeDelta::from_secs(20)),
        ..ExperimentConfig::default()
    }
    .with_baseline(false)
}

/// Counters one pass hands back.
struct PassResult {
    documents: u64,
    elapsed: f64,
    queries: u64,
    snapshots: u64,
    acquisitions: u64,
    build_seconds: f64,
}

/// One served threaded run with `readers` paced threads attached. Active
/// readers acquire snapshots and query them; idle ones (`active == false`)
/// only keep the same wake cadence — the control side of the measurement.
fn pass(
    config: &ExperimentConfig,
    docs: &[setcorr_model::Document],
    readers: usize,
    active: bool,
) -> PassResult {
    let docs: Vec<setcorr_model::Document> = docs.to_vec();
    let start = Instant::now();
    let live = spawn_served(config, Box::new(docs.into_iter()), RunMode::Threaded);
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..readers)
        .map(|reader| {
            let handle = live.query_handle();
            let stop = stop.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                // cheap xorshift so readers don't all touch the same entries
                let mut rng: u64 = 0x9e3779b97f4a7c15 ^ (reader as u64 + 1);
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                let mut last_seq = 0u64;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if !active {
                        // control thread: same wake cadence, no store traffic
                        std::thread::sleep(READER_PAUSE);
                        continue;
                    }
                    let snap = handle.snapshot();
                    assert!(snap.seq() >= last_seq, "snapshot sequence went backwards");
                    last_seq = snap.seq();
                    for _ in 0..QUERIES_PER_ACQUISITION {
                        if snap.is_empty() {
                            std::hint::black_box(snap.top_k(10).count());
                        } else {
                            let pick = (next() % snap.len() as u64) as usize;
                            let target = &snap.coefficients()[pick];
                            match next() % 3 {
                                0 => {
                                    std::hint::black_box(snap.top_k(10).count());
                                }
                                1 => {
                                    let tag = target.tags.iter().next().expect("non-empty tagset");
                                    std::hint::black_box(snap.neighbors(tag, 10).count());
                                }
                                _ => {
                                    std::hint::black_box(snap.coefficient(&target.tags).is_some());
                                }
                            }
                        }
                        local += 1;
                    }
                    std::thread::sleep(READER_PAUSE);
                }
                queries.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let handle = live.query_handle();
    let report = live.finish();
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("reader thread panicked");
    }
    PassResult {
        documents: report.documents,
        elapsed,
        queries: queries.load(Ordering::Relaxed),
        snapshots: report.snapshots_published,
        // re-read after the readers joined so their final acquisitions count
        acquisitions: handle.reader_acquisitions(),
        build_seconds: report.snapshot_build_seconds,
    }
}

/// Run the full serving measurement. `quick` shrinks the stream for CI
/// smoke runs.
pub fn measure(quick: bool) -> ServeReport {
    let n_docs = if quick { 30_000 } else { 100_000 };
    let docs = fixtures::stream(23, n_docs, 1300);
    let config = bench_config();

    // Warm-up: one un-recorded pass absorbs the cold start (frequency
    // ramp, lazy allocation, page-cache fill) that otherwise lands
    // entirely on the first recorded control rep.
    let _ = pass(&config, &docs, READERS, false);

    // Paired reps: control and read-load measured back-to-back, so each
    // rep's ratio sees the same machine weather. The recorded figures come
    // from the rep with the *median* ratio — a cross-rep minimum taken
    // independently per side would let noise invert the sign of the
    // slowdown (see the constant's doc).
    let mut reps: Vec<(PassResult, PassResult)> = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let quiet = pass(&config, &docs, READERS, false);
        let loaded = pass(&config, &docs, READERS, true);
        reps.push((quiet, loaded));
    }
    let ratio = |pair: &(PassResult, PassResult)| -> f64 {
        let quiet_rate = pair.0.documents as f64 / pair.0.elapsed.max(1e-9);
        let loaded_rate = pair.1.documents as f64 / pair.1.elapsed.max(1e-9);
        loaded_rate / quiet_rate.max(1e-9)
    };
    reps.sort_by(|a, b| ratio(a).partial_cmp(&ratio(b)).expect("finite ratios"));
    let (quiet, loaded) = &reps[reps.len() / 2];

    let ingest_docs_per_sec = quiet.documents as f64 / quiet.elapsed.max(1e-9);
    let ingest_docs_per_sec_read_load = loaded.documents as f64 / loaded.elapsed.max(1e-9);
    ServeReport {
        docs: loaded.documents,
        readers: READERS,
        snapshots: loaded.snapshots,
        acquisitions: loaded.acquisitions,
        queries: loaded.queries,
        reader_qps: loaded.queries as f64 / loaded.elapsed.max(1e-9),
        ingest_docs_per_sec,
        ingest_docs_per_sec_read_load,
        ingest_slowdown_pct: (1.0 - ingest_docs_per_sec_read_load / ingest_docs_per_sec.max(1e-9))
            * 100.0,
        snapshot_build_seconds: loaded.build_seconds,
        git_rev: crate::ingest::git_rev(),
        mode: if quick { "quick" } else { "full" },
    }
}

/// Append `report` as one JSON line to `BENCH_serve.json` in `dir` (the
/// workspace root by convention) — same JSON-lines history convention as
/// `BENCH_ingest.json`, newest record last.
pub fn write_json(report: &ServeReport, dir: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let path = dir.join("BENCH_serve.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all((report.to_json() + "\n").as_bytes())
}

/// The workspace root (shared with the ingest history helpers).
pub fn root() -> std::path::PathBuf {
    workspace_root()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            docs: 1000,
            readers: 4,
            snapshots: 5,
            acquisitions: 200,
            queries: 3200,
            reader_qps: 1600.0,
            ingest_docs_per_sec: 500.0,
            ingest_docs_per_sec_read_load: 480.0,
            ingest_slowdown_pct: 4.0,
            snapshot_build_seconds: 0.0123,
            git_rev: "abc1234".to_string(),
            mode: "quick",
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"bench\":\"serve\""));
        assert!(j.contains("\"readers\":4"));
        assert!(j.contains("\"reader_qps\":1600.0"));
        assert!(j.contains("\"ingest_slowdown_pct\":4.00"));
        assert!(j.contains("\"git_rev\":\"abc1234\""));
        assert!(j.contains("\"mode\":\"quick\""));
    }

    #[test]
    fn write_json_appends_history() {
        let dir = std::env::temp_dir().join(format!("setcorr_serve_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = sample();
        write_json(&r, &dir).unwrap();
        r.reader_qps = 9.0;
        write_json(&r, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_serve.json")).unwrap();
        assert_eq!(text.lines().count(), 2, "one JSON line per recorded run");
        assert!(text.lines().last().unwrap().contains("\"reader_qps\":9.0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_tiny_measurement_runs_end_to_end() {
        // minuscule stream: exercises the spawn/read/join plumbing, not the
        // recorded numbers
        let docs = fixtures::stream(5, 1_500, 1300);
        let config = bench_config();
        let quiet = pass(&config, &docs, 2, false);
        assert_eq!(quiet.queries, 0, "idle control readers never query");
        assert!(quiet.documents > 0);
        let loaded = pass(&config, &docs, 2, true);
        assert_eq!(loaded.documents, quiet.documents);
        assert!(loaded.queries > 0, "readers issued queries");
        assert!(loaded.acquisitions > 0);
    }
}
