//! Sliding-window maintenance: insert/evict/snapshot costs at stream rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_model::{TagSetWindow, TimeDelta, WindowKind};

fn window_ops(c: &mut Criterion) {
    let docs = setcorr_bench::fixtures::stream(19, 50_000, 1300);
    let tagged: Vec<_> = docs.into_iter().filter(|d| d.is_tagged()).collect();

    let mut group = c.benchmark_group("window");
    group.throughput(Throughput::Elements(tagged.len() as u64));
    for (name, kind) in [
        ("time_10s", WindowKind::Time(TimeDelta::from_secs(10))),
        ("count_10k", WindowKind::Count(10_000)),
    ] {
        group.bench_with_input(BenchmarkId::new("insert", name), &kind, |b, &kind| {
            b.iter(|| {
                let mut w = TagSetWindow::new(kind);
                for d in &tagged {
                    w.insert(d.tags.clone(), d.timestamp);
                }
                w.live_docs()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("window_snapshot");
    group.sample_size(30);
    let mut w = TagSetWindow::time(TimeDelta::from_secs(20));
    for d in &tagged {
        w.insert(d.tags.clone(), d.timestamp);
    }
    group.bench_function("snapshot", |b| b.iter(|| w.snapshot().len()));
    group.finish();
}

criterion_group!(benches, window_ops);
criterion_main!(benches);
