//! Disseminator routing throughput: inverted-index lookups per tagset
//! (§3.3), the per-document critical path of the whole system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_bench::fixtures::window_input;
use setcorr_core::{partition, AlgorithmKind, Disseminator, DisseminatorConfig, QualityReference};
use setcorr_model::TagSet;

fn routing(c: &mut Criterion) {
    let input = window_input(13, 10_000);
    let docs: Vec<TagSet> = setcorr_bench::fixtures::stream(14, 30_000, 1300)
        .into_iter()
        .filter(|d| d.is_tagged())
        .map(|d| d.tags)
        .collect();

    let mut group = c.benchmark_group("dissemination");
    group.throughput(Throughput::Elements(docs.len() as u64));
    for algorithm in [AlgorithmKind::Ds, AlgorithmKind::Scl] {
        let parts = partition(algorithm, &input, 10, 42);
        group.bench_with_input(
            BenchmarkId::new("route", algorithm.name()),
            &parts,
            |b, parts| {
                b.iter_batched(
                    || {
                        let mut d = Disseminator::new(10, DisseminatorConfig::default());
                        d.install_partitions(
                            parts,
                            QualityReference {
                                avg_com: 10.0,
                                max_load: 1.0,
                            },
                        );
                        d
                    },
                    |mut d| {
                        let mut notifications = 0usize;
                        for ts in &docs {
                            notifications += d.route(ts).notifications.len();
                        }
                        notifications
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn index_build(c: &mut Criterion) {
    let input = window_input(13, 10_000);
    let parts = partition(AlgorithmKind::Ds, &input, 10, 42);
    let mut group = c.benchmark_group("dissemination_install");
    group.bench_function("install_partitions", |b| {
        b.iter(|| {
            let mut d = Disseminator::new(10, DisseminatorConfig::default());
            d.install_partitions(
                &parts,
                QualityReference {
                    avg_com: 1.0,
                    max_load: 0.5,
                },
            );
            d
        })
    });
    group.finish();
}

criterion_group!(benches, routing, index_build);
criterion_main!(benches);
