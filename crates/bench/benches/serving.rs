//! Serving layer under query load: paced reader threads hammering the
//! snapshot store while the threaded topology ingests at full rate.
//!
//! Appends a run record (git rev + mode) to `BENCH_serve.json` at the
//! workspace root; set `SERVE_QUICK=1` for the CI smoke run.

use setcorr_bench::serving;

fn main() {
    let quick = std::env::var("SERVE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let report = serving::measure(quick);
    print!("{}", report.render());
    let root = serving::root();
    match serving::write_json(&report, &root) {
        Ok(()) => eprintln!("appended to {}", root.join("BENCH_serve.json").display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}
