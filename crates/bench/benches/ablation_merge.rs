//! Ablation: the Merger's two-phase DS protocol (§6.2).
//!
//! With `P` Partitioners, DS Partitioners ship raw disjoint sets and the
//! Merger re-unions them ("merge") instead of every Partitioner packing
//! independently and the Merger repacking blindly ("naive"). This bench
//! quantifies the cost of the faithful protocol against recomputing DS over
//! the union of the window snapshots from scratch ("recompute") — the
//! design alternative DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setcorr_core::{
    disjoint_sets, partition_ds, AlgorithmKind, Merger, PartitionInput, PartitionerOutput,
};
use setcorr_model::{FxHashMap, TagSet, TagSetStat};

/// Split a window into `p` field-grouped shares (as the topology does).
fn shares(input: &PartitionInput, p: usize) -> Vec<Vec<TagSetStat>> {
    let mut out = vec![Vec::new(); p];
    for stat in &input.stats {
        let h = setcorr_model::fx::hash_one(&stat.tags) as usize % p;
        out[h].push(stat.clone());
    }
    out
}

fn merge_ablation(c: &mut Criterion) {
    let input = setcorr_bench::fixtures::window_input(23, 20_000);
    let mut group = c.benchmark_group("merge_ablation");
    group.sample_size(20);
    for &p in &[3usize, 10] {
        let parts: Vec<PartitionInput> = shares(&input, p)
            .into_iter()
            .map(PartitionInput::from_stats)
            .collect();
        // Pre-compute the per-Partitioner disjoint sets (phase 1 output).
        let outputs: Vec<PartitionerOutput> = parts
            .iter()
            .map(|pi| PartitionerOutput::DisjointSets(disjoint_sets(pi)))
            .collect();

        group.bench_with_input(BenchmarkId::new("merge", p), &outputs, |b, outputs| {
            b.iter(|| {
                let mut merger = Merger::new(AlgorithmKind::Ds, 10);
                merger.merge(outputs.clone(), &input).partitions.k()
            })
        });
        group.bench_with_input(BenchmarkId::new("recompute", p), &input, |b, input| {
            b.iter(|| partition_ds(input, 10).k())
        });
    }
    group.finish();

    // Sanity: the merged result must cover exactly what recompute covers.
    let parts: Vec<PartitionInput> = shares(&input, 5)
        .into_iter()
        .map(PartitionInput::from_stats)
        .collect();
    let outputs: Vec<PartitionerOutput> = parts
        .iter()
        .map(|pi| PartitionerOutput::DisjointSets(disjoint_sets(pi)))
        .collect();
    let mut merger = Merger::new(AlgorithmKind::Ds, 10);
    let merged = merger.merge(outputs, &input).partitions;
    let mut missing: FxHashMap<&TagSet, ()> = FxHashMap::default();
    for stat in &input.stats {
        if !merged.covers(&stat.tags) {
            missing.insert(&stat.tags, ());
        }
    }
    assert!(
        missing.is_empty(),
        "merge lost coverage for {}",
        missing.len()
    );
}

criterion_group!(benches, merge_ablation);
criterion_main!(benches);
