//! Generator throughput: the workload must outrun the pipeline so benches
//! and experiments measure the system, not the data source.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use setcorr_workload::{Generator, WorkloadConfig};

fn generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("generate_50k", |b| {
        b.iter(|| {
            Generator::new(WorkloadConfig::with_seed(1))
                .take(50_000)
                .filter(|d| d.is_tagged())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, generate);
criterion_main!(benches);
