//! Exact vs MinHash Jaccard on dense windows.
//!
//! The approximate backend's core claim: a Jaccard query costs `O(k)` slot
//! comparisons however many documents carry the tags, while the exact
//! per-tag document-set intersection costs `O(|T_a| + |T_b|)`. On dense
//! windows (thousands of documents per tag) the MinHash path should clear
//! ≥ 5× the exact throughput at k = 256 — run `cargo bench --bench
//! approx_jaccard` and compare the `all_pairs/*` rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_approx::SignatureStore;
use setcorr_model::{Tag, TagSet};

/// A dense window: `docs` documents over a `vocab`-tag vocabulary, three
/// tags per document — every tag's document set holds thousands of ids.
fn dense_window(docs: u64, vocab: u32) -> Vec<(u64, TagSet)> {
    let mut state = 0x51_7C_C1_B7_27_22_0A_95u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..docs)
        .map(|id| {
            let tags: Vec<u32> = (0..3).map(|_| (next() % vocab as u64) as u32).collect();
            (id, TagSet::from_ids(&tags))
        })
        .collect()
}

/// Exact per-tag document sets (sorted id vectors).
fn exact_sets(window: &[(u64, TagSet)], vocab: u32) -> Vec<Vec<u64>> {
    let mut sets: Vec<Vec<u64>> = vec![Vec::new(); vocab as usize];
    for (id, tags) in window {
        for t in tags.iter() {
            sets[t.0 as usize].push(*id);
        }
    }
    // ids arrive in order, so the vectors are already sorted
    sets
}

fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = (a.len() + b.len()) as u64 - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn bench_all_pairs(c: &mut Criterion) {
    const DOCS: u64 = 20_000;
    const VOCAB: u32 = 40;
    let window = dense_window(DOCS, VOCAB);
    let sets = exact_sets(&window, VOCAB);
    let mut store = SignatureStore::new(256, 7);
    for (id, tags) in &window {
        store.observe(*id, tags);
    }
    let pairs: u64 = (VOCAB as u64) * (VOCAB as u64 - 1) / 2;

    let mut group = c.benchmark_group("all_pairs");
    group.throughput(Throughput::Elements(pairs));
    group.bench_function(BenchmarkId::new("exact", format!("{DOCS}docs")), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in 0..VOCAB {
                for bb in a + 1..VOCAB {
                    acc += exact_jaccard(&sets[a as usize], &sets[bb as usize]);
                }
            }
            acc
        })
    });
    group.bench_function(
        BenchmarkId::new("minhash_k256", format!("{DOCS}docs")),
        |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for a in 0..VOCAB {
                    for bb in a + 1..VOCAB {
                        acc += store.jaccard(Tag(a), Tag(bb)).unwrap_or(0.0);
                    }
                }
                acc
            })
        },
    );
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    const DOCS: u64 = 20_000;
    const VOCAB: u32 = 40;
    let window = dense_window(DOCS, VOCAB);

    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(DOCS));
    for k in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("signature_store", k), &k, |b, &k| {
            b.iter(|| {
                let mut store = SignatureStore::new(k, 7);
                for (id, tags) in &window {
                    store.observe(*id, tags);
                }
                store.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_pairs, bench_ingest);
criterion_main!(benches);
