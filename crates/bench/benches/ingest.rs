//! End-to-end ingest throughput: the recorded perf trajectory of the
//! per-tuple hot paths (Calculator observe, Disseminator routing, threaded
//! topology with channel batching), each run against its own
//! pre-optimisation baseline.
//!
//! Appends a run record (git rev + mode) to `BENCH_ingest.json` at the
//! workspace root; set `INGEST_QUICK=1` for the CI smoke run and
//! `INGEST_DEGREE=<n>` to shard the e2e front (default 1).

use setcorr_bench::ingest;

fn main() {
    let quick = std::env::var("INGEST_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let degree = std::env::var("INGEST_DEGREE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let report = ingest::measure(quick, degree);
    print!("{}", report.render());
    let root = ingest::workspace_root();
    match ingest::write_json(&report, &root) {
        Ok(()) => eprintln!("appended to {}", root.join("BENCH_ingest.json").display()),
        Err(e) => eprintln!("could not write BENCH_ingest.json: {e}"),
    }
}
