//! Cost of a live repartition: planning the handoff, extracting state, and
//! adopting it at the new owner.
//!
//! The protocol's "at large scale" claim rests on migration being `O(state
//! units)`, independent of the window's document count — signature and
//! counter state is small and mergeable (Cormode & Dark), so a partition
//! swap moves kilobytes, not the window. The `handoff/*` rows measure one
//! full fence at a donor Calculator (export → plan → adopt at the heir)
//! for exact and approximate backends; `stall/*` compares that against
//! plain ingest throughput — a Calculator buffers stream tuples only while
//! its barrier waits for peer state, so the tuples stalled per migration
//! are bounded by arrivals during one handoff (`RunReport::stalled_tuples`
//! counts them in real runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_approx::{ApproxCalculator, ApproxParams};
use setcorr_core::{plan_handoff, Calculator, CorrelationBackend, PartitionSet};
use setcorr_model::{Tag, TagSet};

/// `vocab` tags split evenly over `k` partitions, offset by `shift` — the
/// old and new maps of a migration differ by one rotation.
fn partition_map(vocab: u32, k: usize, shift: usize) -> PartitionSet {
    let mut ps = PartitionSet::empty(k);
    for t in 0..vocab {
        let part = (t as usize / (vocab as usize).div_ceil(k) + shift) % k;
        ps.parts[part].absorb_tags(&[Tag(t)], 0);
    }
    ps
}

/// A synthetic round at one Calculator: `docs` notifications of 2–3 tags
/// drawn from the low end of the vocabulary (its owned range).
fn feed(backend: &mut dyn CorrelationBackend, docs: u64, vocab: u32) {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for doc in 0..docs {
        let a = (next() % vocab as u64) as u32;
        let b = (next() % vocab as u64) as u32;
        backend.observe_doc(doc, &TagSet::from_ids(&[a, b]));
    }
}

fn bench_handoff(c: &mut Criterion) {
    const VOCAB: u32 = 64; // one partition's worth of tags
    const K: usize = 5;
    let old = partition_map(VOCAB, K, 0);
    let new = partition_map(VOCAB, K, 1);

    let mut group = c.benchmark_group("handoff");
    for docs in [2_000u64, 20_000] {
        let mut exact = Calculator::new();
        feed(&mut exact, docs, VOCAB);
        group.throughput(Throughput::Elements(exact.export_state().units()));
        group.bench_with_input(BenchmarkId::new("exact", docs), &docs, |b, _| {
            b.iter(|| {
                let plan = plan_handoff(0, &old, &new, &exact.export_state());
                let mut heir = Calculator::new();
                for (_, bundle) in &plan {
                    heir.adopt_state(bundle);
                }
                heir.tracked()
            })
        });

        let mut approx = ApproxCalculator::new(ApproxParams::default());
        feed(&mut approx, docs, VOCAB);
        group.bench_with_input(BenchmarkId::new("approx", docs), &docs, |b, _| {
            b.iter(|| {
                let plan = plan_handoff(0, &old, &new, &approx.export_state());
                let mut heir = ApproxCalculator::new(ApproxParams::default());
                for (_, bundle) in &plan {
                    heir.adopt_state(bundle);
                }
                heir.tracked()
            })
        });
    }
    group.finish();
}

/// Tuples "stalled" per migration: how many notifications the same
/// Calculator ingests in the time one handoff takes. Compare the two rows
/// — the ratio is the stream-time price of a migration.
fn bench_stall_equivalent(c: &mut Criterion) {
    const VOCAB: u32 = 64;
    const DOCS: u64 = 20_000;
    let old = partition_map(VOCAB, 5, 0);
    let new = partition_map(VOCAB, 5, 1);
    let mut donor = Calculator::new();
    feed(&mut donor, DOCS, VOCAB);

    let mut group = c.benchmark_group("stall");
    group.throughput(Throughput::Elements(DOCS));
    group.bench_function("ingest_20k_tuples", |b| {
        b.iter(|| {
            let mut calc = Calculator::new();
            feed(&mut calc, DOCS, VOCAB);
            calc.tracked()
        })
    });
    group.bench_function("one_migration", |b| {
        b.iter(|| {
            let state = donor.export_state();
            let plan = plan_handoff(0, &old, &new, &state);
            let mut heir = Calculator::new();
            for (_, bundle) in &plan {
                heir.adopt_state(bundle);
            }
            heir.tracked()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_handoff, bench_stall_equivalent);
criterion_main!(benches);
