//! Union-find micro-benchmarks: the substrate of the DS algorithm and the
//! Fig. 7 connectivity measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_bench::fixtures::window_input;
use setcorr_core::{connected_components, UnionFind};

fn unions(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find");
    for &n in &[1_000u32, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut uf = UnionFind::new(n as usize);
                for i in 0..n - 1 {
                    uf.union(i, i + 1);
                }
                uf.set_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
            b.iter(|| {
                let mut uf = UnionFind::new(n as usize);
                for i in 1..n {
                    uf.union(0, i);
                }
                uf.set_count()
            })
        });
    }
    group.finish();
}

fn components(c: &mut Criterion) {
    let mut group = c.benchmark_group("connected_components");
    group.sample_size(20);
    for &n in &[5_000usize, 20_000] {
        let input = window_input(17, n);
        group.throughput(Throughput::Elements(input.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| connected_components(input).components.len())
        });
    }
    group.finish();
}

criterion_group!(benches, unions, components);
criterion_main!(benches);
