//! Calculator hot path: subset counting (§3.1) and inclusion–exclusion
//! reporting. Cost grows as `2^m − 1` per notification — the paper's
//! feasibility argument rests on tweets carrying < 10 tags.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_core::Calculator;
use setcorr_model::TagSet;

fn bench_observe_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("calculator_observe");
    for m in [1usize, 2, 4, 8] {
        let ts = TagSet::from_ids(&(0..m as u32).collect::<Vec<_>>());
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(m), &ts, |b, ts| {
            let mut calc = Calculator::new();
            b.iter(|| calc.observe(ts));
        });
    }
    group.finish();
}

fn bench_observe_stream(c: &mut Criterion) {
    // a realistic mix of notification sizes from the default workload
    let docs: Vec<TagSet> = setcorr_bench::fixtures::stream(11, 20_000, 1300)
        .into_iter()
        .filter(|d| d.is_tagged())
        .map(|d| d.tags)
        .collect();
    let mut group = c.benchmark_group("calculator_stream");
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_function("observe_mixed", |b| {
        b.iter(|| {
            let mut calc = Calculator::new();
            for ts in &docs {
                calc.observe(ts);
            }
            calc.tracked()
        })
    });
    group.finish();
}

fn bench_report(c: &mut Criterion) {
    let docs: Vec<TagSet> = setcorr_bench::fixtures::stream(11, 20_000, 1300)
        .into_iter()
        .filter(|d| d.is_tagged())
        .map(|d| d.tags)
        .collect();
    let mut group = c.benchmark_group("calculator_report");
    group.sample_size(20);
    group.bench_function("report_and_reset", |b| {
        b.iter_batched(
            || {
                let mut calc = Calculator::new();
                for ts in &docs {
                    calc.observe(ts);
                }
                calc
            },
            |mut calc| calc.report_and_reset(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_observe_by_size,
    bench_observe_stream,
    bench_report
);
criterion_main!(benches);
