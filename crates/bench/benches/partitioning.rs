//! Wall-time of the four §4 partitioning algorithms over realistic windows.
//!
//! The paper requires partitioning to be cheap relative to the window it
//! serves ("any partitioning computed will be valid/appropriate only for a
//! short period", §2) — this bench quantifies the cost per algorithm and
//! window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setcorr_bench::fixtures::window_input;
use setcorr_core::{partition, AlgorithmKind};

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(20);
    for &n in &[1_000usize, 5_000, 20_000] {
        let input = window_input(7, n);
        group.throughput(Throughput::Elements(input.len() as u64));
        for algorithm in AlgorithmKind::ALL {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), n), &input, |b, input| {
                b.iter(|| partition(algorithm, input, 10, 42))
            });
        }
    }
    group.finish();
}

fn bench_partitioning_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning_k");
    group.sample_size(20);
    let input = window_input(7, 10_000);
    for &k in &[5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("DS", k), &input, |b, input| {
            b.iter(|| partition(AlgorithmKind::Ds, input, k, 42))
        });
        group.bench_with_input(BenchmarkId::new("SCC", k), &input, |b, input| {
            b.iter(|| partition(AlgorithmKind::Scc, input, k, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning, bench_partitioning_k);
criterion_main!(benches);
