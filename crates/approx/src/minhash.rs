//! k-permutation MinHash signatures.
//!
//! A signature summarises a document set with `k` independent minimum hash
//! values; the Jaccard coefficient of two sets equals the probability that
//! their minima agree per permutation, so the fraction of agreeing slots is
//! an unbiased estimator with standard error `sqrt(J(1−J)/k)` — independent
//! of the set sizes. At `k = 256` the worst-case (J = 0.5) standard error is
//! ≈ 0.031, and a point estimate costs `O(k)` regardless of how many
//! documents carry the tags.
//!
//! Hash family: one strong mix of the element, then `k` multiply-add
//! (multiply-shift) permutations with odd multipliers derived from the seed
//! via SplitMix64. Deterministic per seed, no allocations per element.
//!
//! (One-permutation MinHash with densification would cut the per-element
//! cost from `O(k)` to `O(1)` at the price of higher variance on sparse
//! sets; the estimator interface below would not change.)

/// SplitMix64 finaliser — strong avalanche before the per-permutation
/// multiply-add.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shared family of `k` hash permutations. One instance serves every
/// signature in a [`crate::SignatureStore`], so the `2k` multipliers are
/// stored once, not per tag.
///
/// ```
/// use setcorr_approx::{MinHasher, MinHashSignature};
///
/// // 256 permutations: standard error ≤ sqrt(0.25 / 256) ≈ 0.031.
/// let hasher = MinHasher::new(256, 42);
/// let mut a = MinHashSignature::new(hasher.k());
/// let mut b = MinHashSignature::new(hasher.k());
/// for doc in 0u64..1_000 {
///     a.observe(&hasher, doc);
/// }
/// for doc in 500u64..1_500 {
///     b.observe(&hasher, doc);
/// }
/// // |A ∩ B| = 500, |A ∪ B| = 1500 → J = 1/3.
/// let estimate = a.estimate_jaccard(&b).unwrap();
/// assert!((estimate - 1.0 / 3.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    mul: Box<[u64]>,
    add: Box<[u64]>,
    seed: u64,
}

impl MinHasher {
    /// A family of `k ≥ 1` permutations derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "need at least one hash");
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(state)
        };
        MinHasher {
            mul: (0..k).map(|_| next() | 1).collect(),
            add: (0..k).map(|_| next()).collect(),
            seed,
        }
    }

    /// Number of permutations `k`.
    pub fn k(&self) -> usize {
        self.mul.len()
    }

    /// The seed this family was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The `k` minimum hash values of one document set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSignature {
    mins: Box<[u64]>,
    items: u64,
}

impl MinHashSignature {
    /// An empty signature for a family of `k` permutations.
    pub fn new(k: usize) -> Self {
        MinHashSignature {
            mins: vec![u64::MAX; k].into_boxed_slice(),
            items: 0,
        }
    }

    /// Fold one element (a document id) into the signature: `O(k)`.
    pub fn observe(&mut self, hasher: &MinHasher, element: u64) {
        debug_assert_eq!(hasher.k(), self.mins.len(), "hasher/signature mismatch");
        let m = mix64(element ^ hasher.seed);
        for (slot, (&a, &b)) in self
            .mins
            .iter_mut()
            .zip(hasher.mul.iter().zip(hasher.add.iter()))
        {
            let h = a.wrapping_mul(m).wrapping_add(b);
            if h < *slot {
                *slot = h;
            }
        }
        self.items += 1;
    }

    /// Elements folded in so far (with multiplicity).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// True before any element was observed.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Number of permutations `k`.
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// The raw per-permutation minima (`u64::MAX` = empty slot).
    pub fn slots(&self) -> &[u64] {
        &self.mins
    }

    /// Reconstruct a signature from raw slot minima and an item count —
    /// the wire format of a live-migration handoff. Only meaningful when
    /// the slots were produced by the *same* hash family (same `k`, same
    /// seed) over globally consistent element ids.
    pub fn from_raw(slots: Vec<u64>, items: u64) -> Self {
        MinHashSignature {
            mins: slots.into_boxed_slice(),
            items,
        }
    }

    /// Merge `other` into `self`, producing the signature of the set union
    /// (element-wise minimum).
    pub fn merge(&mut self, other: &MinHashSignature) {
        assert_eq!(self.mins.len(), other.mins.len(), "signature size mismatch");
        for (a, &b) in self.mins.iter_mut().zip(other.mins.iter()) {
            if b < *a {
                *a = b;
            }
        }
        self.items += other.items;
    }

    /// Estimate `J(A, B)` as the fraction of agreeing slots. Returns `None`
    /// if either side is empty (no evidence at all).
    pub fn estimate_jaccard(&self, other: &MinHashSignature) -> Option<f64> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        assert_eq!(self.mins.len(), other.mins.len(), "signature size mismatch");
        let matches = self
            .mins
            .iter()
            .zip(other.mins.iter())
            .filter(|(a, b)| a == b)
            .count();
        Some(matches as f64 / self.mins.len() as f64)
    }
}

/// Multi-way generalisation: the fraction of slots where *all* signatures
/// agree estimates `|A₁ ∩ … ∩ Aₙ| / |A₁ ∪ … ∪ Aₙ|` — exactly the paper's
/// Eq. 1 numerator/denominator for tagsets of more than two tags. Returns
/// `None` for fewer than two signatures or any empty one.
pub fn estimate_jaccard_many(signatures: &[&MinHashSignature]) -> Option<f64> {
    let [first, rest @ ..] = signatures else {
        return None;
    };
    if rest.is_empty() || signatures.iter().any(|s| s.is_empty()) {
        return None;
    }
    let k = first.k();
    assert!(rest.iter().all(|s| s.k() == k), "signature size mismatch");
    let mut matches = 0usize;
    for slot in 0..k {
        let v = first.mins[slot];
        if rest.iter().all(|s| s.mins[slot] == v) {
            matches += 1;
        }
    }
    Some(matches as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signature_of(hasher: &MinHasher, elements: impl Iterator<Item = u64>) -> MinHashSignature {
        let mut sig = MinHashSignature::new(hasher.k());
        for e in elements {
            sig.observe(hasher, e);
        }
        sig
    }

    #[test]
    fn identical_sets_estimate_one() {
        let hasher = MinHasher::new(64, 7);
        let a = signature_of(&hasher, 0..500);
        let b = signature_of(&hasher, 0..500);
        assert_eq!(a.estimate_jaccard(&b), Some(1.0));
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let hasher = MinHasher::new(256, 7);
        let a = signature_of(&hasher, 0..2_000);
        let b = signature_of(&hasher, 1_000_000..1_002_000);
        let est = a.estimate_jaccard(&b).unwrap();
        assert!(est < 0.03, "disjoint sets estimated at {est}");
    }

    #[test]
    fn estimates_track_true_jaccard() {
        // |A| = |B| = 3000, |A ∩ B| = 1500 → J = 1500 / 4500 = 1/3
        let hasher = MinHasher::new(256, 42);
        let a = signature_of(&hasher, 0..3_000);
        let b = signature_of(&hasher, 1_500..4_500);
        let est = a.estimate_jaccard(&b).unwrap();
        assert!(
            (est - 1.0 / 3.0).abs() < 0.08,
            "J=1/3 estimated at {est} (k=256)"
        );
    }

    #[test]
    fn empty_signatures_return_none() {
        let hasher = MinHasher::new(16, 1);
        let empty = MinHashSignature::new(16);
        let full = signature_of(&hasher, 0..10);
        assert_eq!(empty.estimate_jaccard(&full), None);
        assert_eq!(full.estimate_jaccard(&empty), None);
        assert!(empty.is_empty() && !full.is_empty());
    }

    #[test]
    fn merge_is_the_union_signature() {
        let hasher = MinHasher::new(128, 3);
        let mut a = signature_of(&hasher, 0..400);
        let b = signature_of(&hasher, 200..600);
        let union = signature_of(&hasher, 0..600);
        a.merge(&b);
        assert_eq!(a.slots(), union.slots(), "slot-wise min = union signature");
        assert_eq!(a.estimate_jaccard(&union), Some(1.0));
    }

    #[test]
    fn multiway_agreement_estimates_triple_jaccard() {
        // A = 0..900, B = 300..1200, C = 600..1500:
        // intersection = 600..900 (300), union = 0..1500 → J = 0.2
        let hasher = MinHasher::new(512, 9);
        let a = signature_of(&hasher, 0..900);
        let b = signature_of(&hasher, 300..1_200);
        let c = signature_of(&hasher, 600..1_500);
        let est = estimate_jaccard_many(&[&a, &b, &c]).unwrap();
        assert!((est - 0.2).abs() < 0.07, "J=0.2 estimated at {est}");
        assert_eq!(
            estimate_jaccard_many(&[&a]),
            None,
            "one signature is trivial"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let h1 = MinHasher::new(32, 5);
        let h2 = MinHasher::new(32, 5);
        let a = signature_of(&h1, 0..50);
        let b = signature_of(&h2, 0..50);
        assert_eq!(a, b);
        let h3 = MinHasher::new(32, 6);
        let c = signature_of(&h3, 0..50);
        assert_ne!(a, c);
    }
}
