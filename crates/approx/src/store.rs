//! Per-tag signature maintenance over the tagset stream.
//!
//! The exact Calculator's memory grows with the number of *distinct subset
//! counters* it tracks; a [`SignatureStore`] instead keeps one fixed-size
//! MinHash signature per live tag — `O(tags × k)` words regardless of how
//! many documents the window holds — and answers Jaccard queries in `O(k)`.
//!
//! Two ways to feed it:
//!
//! * **streaming** ([`SignatureStore::observe`]): fold each arriving
//!   document into the signatures of its tags (the approximate backend's
//!   per-report-period mode; state is cleared at round boundaries like the
//!   exact Calculator's counters), or
//! * **window sync** ([`SignatureStore::sync_window`]): rebuild from a
//!   [`TagSetWindow`]'s live content, using the window's version counter to
//!   skip rebuilds when nothing changed (the Partitioner-side mode).

use crate::minhash::{estimate_jaccard_many, mix64, MinHashSignature, MinHasher};
use setcorr_model::{fx, FxHashMap, FxHashSet, Tag, TagSet, TagSetWindow};

/// Per-tag MinHash signatures with shared hash family.
#[derive(Debug, Clone)]
pub struct SignatureStore {
    hasher: MinHasher,
    signatures: FxHashMap<Tag, MinHashSignature>,
    /// Documents folded in (with multiplicity).
    docs: u64,
    /// Window version this store was last rebuilt against.
    synced_version: Option<u64>,
}

impl SignatureStore {
    /// A store whose signatures use `k` hash permutations derived from
    /// `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        SignatureStore {
            hasher: MinHasher::new(k, seed),
            signatures: FxHashMap::default(),
            docs: 0,
            synced_version: None,
        }
    }

    /// Number of hash permutations per signature.
    pub fn hashes(&self) -> usize {
        self.hasher.k()
    }

    /// Number of tags currently holding a signature.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if no tag has a signature yet.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Documents folded in since the last reset/rebuild.
    pub fn docs(&self) -> u64 {
        self.docs
    }

    /// Fold one document into the signatures of its tags. `doc_id` must be
    /// unique per document (any stable id works; the estimator only needs
    /// ids to collide exactly when the document is the same).
    pub fn observe(&mut self, doc_id: u64, tags: &TagSet) {
        if tags.is_empty() {
            return;
        }
        let k = self.hasher.k();
        for tag in tags.iter() {
            self.signatures
                .entry(tag)
                .or_insert_with(|| MinHashSignature::new(k))
                .observe(&self.hasher, doc_id);
        }
        self.docs += 1;
    }

    /// The signature of `tag`, if any document carried it.
    pub fn signature(&self, tag: Tag) -> Option<&MinHashSignature> {
        self.signatures.get(&tag)
    }

    /// Estimated `J(T_a, T_b)` between two tags' document sets, `None` when
    /// either tag was never observed.
    pub fn jaccard(&self, a: Tag, b: Tag) -> Option<f64> {
        self.signatures
            .get(&a)?
            .estimate_jaccard(self.signatures.get(&b)?)
    }

    /// Estimated multi-way Jaccard `|⋂ T_t| / |⋃ T_t|` over all tags of
    /// `ts` (Eq. 1 of the paper), `None` for trivial tagsets or unobserved
    /// tags.
    pub fn jaccard_set(&self, ts: &TagSet) -> Option<f64> {
        if ts.len() < 2 {
            return None;
        }
        let sigs: Option<Vec<&MinHashSignature>> =
            ts.iter().map(|t| self.signatures.get(&t)).collect();
        estimate_jaccard_many(&sigs?)
    }

    /// Rebuild the signatures from a sliding window's live content. Returns
    /// `false` without doing any work when the window's
    /// [`TagSetWindow::version`] is unchanged since the last sync.
    ///
    /// Synthetic document ids are derived from each distinct tagset's hash
    /// and its occurrence index, so equal documents contribute identically
    /// across all their tags (which is what makes the per-tag sets overlap
    /// correctly).
    pub fn sync_window(&mut self, window: &TagSetWindow) -> bool {
        if self.synced_version == Some(window.version()) {
            return false;
        }
        self.signatures.clear();
        self.docs = 0;
        for (tags, count) in window.iter_stats() {
            let base = fx::hash_one(tags);
            for occurrence in 0..count {
                self.observe(base ^ mix64(occurrence.wrapping_add(1)), tags);
            }
        }
        self.synced_version = Some(window.version());
        true
    }

    /// Export every per-tag signature as `(tag, raw slots, items)`, sorted
    /// by tag — the `signatures` field of a live-migration bundle.
    ///
    /// Receivers can only merge these when both stores share one hash
    /// family (same `k`, same seed) and were fed *globally* consistent
    /// document ids; the topology guarantees both by building all
    /// Calculator backends from one seed and stamping notifications with
    /// the Disseminator's document sequence number.
    pub fn export_signatures(&self) -> Vec<(Tag, Vec<u64>, u64)> {
        let mut out: Vec<(Tag, Vec<u64>, u64)> = self
            .signatures
            .iter()
            .map(|(&tag, sig)| (tag, sig.slots().to_vec(), sig.items()))
            .collect();
        out.sort_unstable_by_key(|&(tag, _, _)| tag);
        out
    }

    /// Merge one migrated signature in (element-wise minimum = union of the
    /// observed document sets). Panics if the slot count does not match
    /// this store's hash family.
    pub fn adopt_signature(&mut self, tag: Tag, slots: &[u64], items: u64) {
        assert_eq!(slots.len(), self.hasher.k(), "hash family mismatch");
        match self.signatures.get_mut(&tag) {
            Some(sig) => sig.merge(&MinHashSignature::from_raw(slots.to_vec(), items)),
            None => {
                self.signatures
                    .insert(tag, MinHashSignature::from_raw(slots.to_vec(), items));
            }
        }
    }

    /// Drop the signatures of every tag outside `keep` (the owner's tag set
    /// after a repartition).
    pub fn retain_tags(&mut self, keep: &FxHashSet<Tag>) {
        self.signatures.retain(|tag, _| keep.contains(tag));
    }

    /// Drop all signatures (round boundary).
    pub fn reset(&mut self) {
        self.signatures.clear();
        self.docs = 0;
        self.synced_version = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcorr_model::Timestamp;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_ids(ids)
    }

    #[test]
    fn streaming_estimates_match_ground_truth() {
        let mut store = SignatureStore::new(256, 11);
        // 600 docs {1,2}, 300 docs {1}, 300 docs {2}:
        // J(1,2) = 600 / 1200 = 0.5
        let mut doc = 0u64;
        for _ in 0..600 {
            store.observe(doc, &ts(&[1, 2]));
            doc += 1;
        }
        for _ in 0..300 {
            store.observe(doc, &ts(&[1]));
            doc += 1;
        }
        for _ in 0..300 {
            store.observe(doc, &ts(&[2]));
            doc += 1;
        }
        let est = store.jaccard(Tag(1), Tag(2)).unwrap();
        assert!((est - 0.5).abs() < 0.08, "J=0.5 estimated at {est}");
        assert_eq!(store.docs(), 1200);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn unseen_tags_are_none() {
        let mut store = SignatureStore::new(32, 0);
        store.observe(1, &ts(&[1, 2]));
        assert_eq!(store.jaccard(Tag(1), Tag(9)), None);
        assert_eq!(store.jaccard_set(&ts(&[1])), None, "trivial");
        assert_eq!(store.jaccard_set(&ts(&[7, 8])), None);
    }

    #[test]
    fn multiway_set_estimate() {
        let mut store = SignatureStore::new(512, 5);
        let mut doc = 0u64;
        // 400 docs {1,2,3}, 400 docs {1}: J({1,2,3}) = 400/800 = 0.5
        for _ in 0..400 {
            store.observe(doc, &ts(&[1, 2, 3]));
            doc += 1;
        }
        for _ in 0..400 {
            store.observe(doc, &ts(&[1]));
            doc += 1;
        }
        let est = store.jaccard_set(&ts(&[1, 2, 3])).unwrap();
        assert!((est - 0.5).abs() < 0.08, "J=0.5 estimated at {est}");
    }

    #[test]
    fn window_sync_skips_unchanged_versions_and_tracks_content() {
        let mut w = TagSetWindow::count(1_000);
        for i in 0..500 {
            w.insert(ts(&[1, 2]), Timestamp(i));
        }
        for i in 500..1_000 {
            w.insert(ts(&[2, 3]), Timestamp(i));
        }
        let mut store = SignatureStore::new(256, 21);
        assert!(store.sync_window(&w), "first sync rebuilds");
        assert!(!store.sync_window(&w), "unchanged window is a no-op");
        // J(1,2) = 500/1000, J(1,3) = 0
        let est12 = store.jaccard(Tag(1), Tag(2)).unwrap();
        assert!((est12 - 0.5).abs() < 0.09, "J=0.5 estimated at {est12}");
        let est13 = store.jaccard(Tag(1), Tag(3)).unwrap();
        assert!(est13 < 0.05, "J=0 estimated at {est13}");
        // mutate → version changes → resync rebuilds
        w.insert(ts(&[4]), Timestamp(1_000));
        assert!(store.sync_window(&w));
        assert!(store.signature(Tag(4)).is_some());
    }

    #[test]
    fn reset_clears_everything() {
        let mut store = SignatureStore::new(16, 2);
        store.observe(1, &ts(&[1, 2]));
        store.reset();
        assert!(store.is_empty());
        assert_eq!(store.docs(), 0);
        assert_eq!(store.jaccard(Tag(1), Tag(2)), None);
    }
}
