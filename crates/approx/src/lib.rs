//! # setcorr-approx
//!
//! The approximate correlation subsystem: a sketch-backed alternative to the
//! exact inclusion–exclusion Calculator, trading bounded Jaccard error for
//! memory and speed.
//!
//! The paper (§2) dismisses sketch-based designs because testing *all* tag
//! pairs against per-tag sketches drowns in phantom co-occurrences — the
//! overhead `setcorr_sketch::SketchCooccurrence` quantifies. This crate
//! takes the route of *Fast Sketch-based Recovery of Correlation Outliers*
//! (Cormode & Dark, 2017) instead: never enumerate the pair space; recover
//! the heavy, correlated pairs directly from what actually arrives.
//!
//! * [`MinHashSignature`] / [`MinHasher`] — k-permutation MinHash,
//!   estimating Jaccard in `O(k)` independent of document-set size,
//! * [`SignatureStore`] — per-tag signatures over the notification stream or
//!   a sliding [`setcorr_model::TagSetWindow`] (version-gated rebuilds),
//! * [`HeavyPairs`] — Count-Min counts + a bounded top-k candidate set with
//!   epoch-over-epoch *emerging pair* scoring,
//! * [`ApproxCalculator`] — the pieces assembled behind
//!   [`setcorr_core::CorrelationBackend`], pluggable wherever the exact
//!   Calculator goes (select it via the topology's `ExperimentConfig`),
//! * [`accuracy`] — exact-vs-approx comparison through
//!   [`setcorr_metrics::ErrorStats`].
//!
//! At the default `hashes = 256`, every coefficient estimate carries
//! standard error ≤ `sqrt(0.25/256)` ≈ 0.031; memory per Calculator is
//! `O(tags × 256 + cms)` words however large the window grows.

#![warn(missing_docs)]

pub mod accuracy;
pub mod calculator;
pub mod heavy;
pub mod minhash;
pub mod store;

pub use accuracy::exact_vs_approx;
pub use calculator::{ApproxCalculator, ApproxParams};
pub use heavy::{EmergingPair, HeavyPair, HeavyPairs};
pub use minhash::{estimate_jaccard_many, MinHashSignature, MinHasher};
pub use store::SignatureStore;
