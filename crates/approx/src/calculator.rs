//! The approximate drop-in for the exact Calculator.
//!
//! [`ApproxCalculator`] implements [`CorrelationBackend`] by combining the
//! two sketch structures of this crate:
//!
//! * a [`SignatureStore`] estimating Jaccard coefficients in `O(k)` per
//!   query, independent of document-set sizes,
//! * a [`HeavyPairs`] detector surfacing the top co-occurring pairs without
//!   enumerating the pair space, with epoch-over-epoch emergence scoring.
//!
//! Memory is `O(tags × k + cms + top_k)` per report period, versus the
//! exact Calculator's one counter per distinct observed subset. The price
//! is bounded error: Jaccard estimates carry standard error
//! `sqrt(J(1−J)/hashes)` and reported counters are Count-Min over-estimates.

use crate::heavy::{EmergingPair, HeavyPairs};
use crate::store::SignatureStore;
use setcorr_core::{CoefficientReport, CorrelationBackend, MigrationBundle};
use setcorr_model::{FxHashSet, Tag, TagSet};

/// Tuning knobs of the approximate backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxParams {
    /// MinHash permutations per signature (`k`). 256 gives ≤ ~0.031
    /// standard error on any coefficient.
    pub hashes: usize,
    /// Count-Min sketch width (columns per row).
    pub cms_width: usize,
    /// Count-Min sketch depth (rows).
    pub cms_depth: usize,
    /// Heavy pairs reported per report period.
    pub top_k: usize,
    /// Seed of the signature hash family.
    pub seed: u64,
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams {
            hashes: 256,
            cms_width: 4096,
            cms_depth: 4,
            top_k: 256,
            seed: 0x5E7C_0FFE,
        }
    }
}

impl ApproxParams {
    /// Params with a specific signature count, everything else default.
    pub fn with_hashes(hashes: usize) -> Self {
        ApproxParams {
            hashes,
            ..Default::default()
        }
    }
}

/// MinHash + Count-Min correlation state for one Calculator task.
#[derive(Debug, Clone)]
pub struct ApproxCalculator {
    params: ApproxParams,
    store: SignatureStore,
    heavy: HeavyPairs,
    /// Internal per-period document counter, used as the MinHash element id
    /// (each `observe` call is one document's notification).
    next_doc: u64,
    received: u64,
    /// Emerging pairs computed at the last report boundary.
    last_emerging: Vec<EmergingPair>,
}

impl ApproxCalculator {
    /// Backend with the given tuning.
    pub fn new(params: ApproxParams) -> Self {
        ApproxCalculator {
            store: SignatureStore::new(params.hashes, params.seed),
            heavy: HeavyPairs::new(params.top_k, params.cms_width, params.cms_depth),
            params,
            next_doc: 0,
            received: 0,
            last_emerging: Vec::new(),
        }
    }

    /// Backend with default tuning.
    pub fn with_defaults() -> Self {
        Self::new(ApproxParams::default())
    }

    /// The tuning this backend runs with.
    pub fn params(&self) -> &ApproxParams {
        &self.params
    }

    /// The signature store (for inspection and direct queries).
    pub fn store(&self) -> &SignatureStore {
        &self.store
    }

    /// The heavy-pair detector (for inspection and direct queries).
    pub fn heavy(&self) -> &HeavyPairs {
        &self.heavy
    }

    /// The emerging pairs scored at the last report boundary, growth-first
    /// (empty before the first report).
    pub fn emerging(&self) -> &[EmergingPair] {
        &self.last_emerging
    }
}

impl CorrelationBackend for ApproxCalculator {
    fn name(&self) -> &'static str {
        "approx"
    }

    fn observe(&mut self, notification: &TagSet) {
        // standalone use: a task-local counter serves as the document id
        let doc_id = self.next_doc;
        if !notification.is_empty() {
            self.next_doc += 1;
        }
        self.observe_doc(doc_id, notification);
    }

    fn observe_doc(&mut self, doc_id: u64, notification: &TagSet) {
        // Fold the *global* document id so that signatures of replicated
        // tags are bit-identical across Calculators — the property live
        // migration's min-merge relies on.
        if notification.is_empty() {
            return;
        }
        self.received += 1;
        self.store.observe(doc_id, notification);
        self.heavy.observe(notification);
    }

    fn jaccard(&self, ts: &TagSet) -> Option<f64> {
        if ts.len() < 2 {
            return None;
        }
        // Count-Min never under-counts: a zero estimate for any pair proves
        // those two tags never co-occurred this period, matching the exact
        // backend's `None` for never-co-occurring tagsets.
        let tags = ts.tags();
        for (i, &a) in tags.iter().enumerate() {
            for &b in &tags[i + 1..] {
                if self.heavy.estimate(a, b) == 0 {
                    return None;
                }
            }
        }
        self.store.jaccard_set(ts)
    }

    fn report_and_reset(&mut self) -> Vec<CoefficientReport> {
        let mut out: Vec<CoefficientReport> = Vec::new();
        for pair in self.heavy.top() {
            let tags = pair.tagset();
            let Some(jaccard) = self.store.jaccard_set(&tags) else {
                continue;
            };
            out.push(CoefficientReport {
                tags,
                jaccard,
                counter: pair.count,
            });
        }
        out.sort_unstable_by(|a, b| a.tags.cmp(&b.tags));
        self.last_emerging = self.heavy.roll_epoch();
        self.store.reset();
        self.next_doc = 0;
        self.received = 0;
        out
    }

    fn tracked(&self) -> usize {
        self.store.len() + self.heavy.candidates()
    }

    fn received(&self) -> u64 {
        self.received
    }

    fn export_state(&self) -> MigrationBundle {
        MigrationBundle {
            counters: Vec::new(),
            signatures: self.store.export_signatures(),
            pairs: self.heavy.export_pairs(),
        }
    }

    fn retain_tags(&mut self, keep: &FxHashSet<Tag>) {
        self.store.retain_tags(keep);
        self.heavy.retain_tags(keep);
    }

    fn adopt_state(&mut self, bundle: &MigrationBundle) {
        for (tag, slots, items) in &bundle.signatures {
            self.store.adopt_signature(*tag, slots, *items);
        }
        for &(a, b, n) in &bundle.pairs {
            self.heavy.adopt_pair(a, b, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcorr_core::Calculator;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_ids(ids)
    }

    #[test]
    fn estimates_track_the_exact_backend() {
        let mut exact = Calculator::new();
        let mut approx = ApproxCalculator::with_defaults();
        // 300 × {1,2}, 150 × {1}, 150 × {2}, 100 × {3,4}
        let stream: Vec<TagSet> = std::iter::repeat_n(ts(&[1, 2]), 300)
            .chain(std::iter::repeat_n(ts(&[1]), 150))
            .chain(std::iter::repeat_n(ts(&[2]), 150))
            .chain(std::iter::repeat_n(ts(&[3, 4]), 100))
            .collect();
        for t in &stream {
            CorrelationBackend::observe(&mut exact, t);
            approx.observe(t);
        }
        for pair in [ts(&[1, 2]), ts(&[3, 4])] {
            let truth = CorrelationBackend::jaccard(&exact, &pair).unwrap();
            let est = approx.jaccard(&pair).unwrap();
            // k = 256 → σ ≤ 0.031 per estimate; 0.08 ≈ 2.5σ
            assert!(
                (est - truth).abs() < 0.08,
                "{pair:?}: {est} vs exact {truth}"
            );
        }
        assert_eq!(
            approx.jaccard(&ts(&[1, 3])),
            None,
            "never co-occurring pairs are provably None via CMS"
        );
    }

    #[test]
    fn report_emits_heavy_pairs_sorted_and_resets() {
        let mut approx = ApproxCalculator::new(ApproxParams {
            top_k: 8,
            ..Default::default()
        });
        for _ in 0..40 {
            approx.observe(&ts(&[5, 6]));
        }
        for _ in 0..20 {
            approx.observe(&ts(&[1, 2]));
        }
        assert_eq!(approx.received(), 60);
        let reports = approx.report_and_reset();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].tags, ts(&[1, 2]), "sorted by tagset");
        assert!(reports[0].counter >= 20);
        assert!((reports[0].jaccard - 1.0).abs() < 1e-9);
        assert_eq!(approx.tracked(), 0, "reset clears state");
        assert_eq!(approx.received(), 0);
        assert!(approx.report_and_reset().is_empty());
        assert_eq!(approx.emerging().len(), 0, "second epoch saw nothing");
    }

    #[test]
    fn emerging_pairs_survive_the_report_boundary() {
        let mut approx = ApproxCalculator::with_defaults();
        for _ in 0..30 {
            approx.observe(&ts(&[1, 2]));
        }
        approx.report_and_reset();
        assert_eq!(approx.emerging().len(), 1);
        // epoch 2: steady pair + a burst
        for _ in 0..30 {
            approx.observe(&ts(&[1, 2]));
        }
        for _ in 0..25 {
            approx.observe(&ts(&[7, 8]));
        }
        approx.report_and_reset();
        let emerging = approx.emerging();
        assert_eq!(emerging.len(), 2);
        assert_eq!(
            emerging[0].pair.tagset(),
            ts(&[7, 8]),
            "the burst leads on growth"
        );
        assert!(emerging[1].growth < 2.0);
    }

    #[test]
    fn migrated_state_reassembles_split_streams() {
        // Pre-fence docs at the donor, post-fence docs at the heir (global
        // doc ids, shared hash family): after adoption the heir's estimate
        // must match a single backend that saw the whole stream.
        let params = ApproxParams::default();
        let mut whole = ApproxCalculator::new(params);
        let mut donor = ApproxCalculator::new(params);
        let mut heir = ApproxCalculator::new(params);
        for doc in 0u64..600 {
            let tags = if doc % 3 == 0 { ts(&[1, 2]) } else { ts(&[1]) };
            whole.observe_doc(doc, &tags);
            if doc < 400 {
                donor.observe_doc(doc, &tags);
            } else {
                heir.observe_doc(doc, &tags);
            }
        }
        heir.adopt_state(&donor.export_state());
        let truth = whole.jaccard(&ts(&[1, 2])).unwrap();
        let merged = heir.jaccard(&ts(&[1, 2])).unwrap();
        assert!(
            (merged - truth).abs() < 1e-9,
            "identical evidence must give identical estimates: {merged} vs {truth}"
        );
    }

    #[test]
    fn retain_tags_drops_departed_state() {
        let mut calc = ApproxCalculator::with_defaults();
        for doc in 0u64..50 {
            calc.observe_doc(doc, &ts(&[1, 2]));
            calc.observe_doc(1_000 + doc, &ts(&[3, 4]));
        }
        let keep: FxHashSet<Tag> = [Tag(1), Tag(2)].into_iter().collect();
        calc.retain_tags(&keep);
        assert!(calc.jaccard(&ts(&[1, 2])).is_some(), "kept pair survives");
        assert_eq!(calc.store().signature(Tag(3)), None, "departed tag gone");
        let state = calc.export_state();
        assert_eq!(state.signatures.len(), 2);
        assert!(state
            .pairs
            .iter()
            .all(|&(a, b, _)| keep.contains(&a) && keep.contains(&b)));
    }

    #[test]
    fn trivial_and_empty_inputs() {
        let mut approx = ApproxCalculator::with_defaults();
        approx.observe(&TagSet::empty());
        assert_eq!(approx.received(), 0);
        approx.observe(&ts(&[1]));
        assert_eq!(approx.jaccard(&ts(&[1])), None);
        assert_eq!(approx.jaccard(&ts(&[1, 2])), None);
    }
}
