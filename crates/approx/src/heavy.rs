//! Heavy co-occurring pair detection: Count-Min counts + a bounded top-k
//! candidate set, with epoch-over-epoch *emerging pair* scoring.
//!
//! The paper's §2 objection to sketches is that testing *all* tag pairs
//! against a sketch drowns in phantom co-occurrences. This detector sidesteps
//! the objection the way Cormode & Dark (2017) recover correlation outliers:
//! it only ever touches pairs that *actually arrive* in a document (so a
//! pure phantom pair — one that never co-occurs — is never considered), uses
//! the Count-Min sketch (conservative update) for their frequencies, and
//! keeps a bounded candidate set of the heaviest ones. Memory is
//! `O(cms + capacity)` however many distinct pairs the stream produces.
//!
//! [`HeavyPairs::roll_epoch`] closes a report period: it returns the top
//! pairs scored against the *previous* period's counts, flagging the pairs
//! whose traffic is new or sharply grown — the emerging-story signal the
//! paper motivates with the enBlogue use case.

use setcorr_model::{FxHashMap, FxHashSet, Tag, TagSet};
use setcorr_sketch::{pair_key, CountMinSketch};

/// One heavy co-occurring pair with its estimated window count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyPair {
    /// The pair, ordered (`a < b`).
    pub a: Tag,
    /// Second tag.
    pub b: Tag,
    /// Count-Min estimate of its co-occurrence count (never under the true
    /// count).
    pub count: u64,
}

impl HeavyPair {
    /// The pair as a two-tag [`TagSet`].
    pub fn tagset(&self) -> TagSet {
        TagSet::new(vec![self.a, self.b])
    }
}

/// A heavy pair scored against the previous epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergingPair {
    /// The pair and its current-epoch count.
    pub pair: HeavyPair,
    /// Its estimated count in the previous epoch (0 = brand new).
    pub previous: u64,
    /// `count / max(previous, 1)` — the epoch-over-epoch growth factor.
    pub growth: f64,
}

fn decode(key: u64) -> (Tag, Tag) {
    (Tag(key as u32), Tag((key >> 32) as u32))
}

/// Count-Min-backed top-k heavy/emerging pair detector.
#[derive(Debug, Clone)]
pub struct HeavyPairs {
    cms: CountMinSketch,
    /// How many pairs [`HeavyPairs::top`] returns.
    capacity: usize,
    /// Candidate pairs and their latest estimates. Bounded at
    /// `4 × capacity`; pruning keeps the heaviest `2 × capacity` and
    /// raises the admission threshold to the lightest survivor.
    candidates: FxHashMap<u64, u64>,
    /// Admission threshold established by the last prune.
    threshold: u64,
    /// Previous epoch's top estimates, for emergence scoring.
    previous: FxHashMap<u64, u64>,
    /// Pair observations this epoch (with multiplicity).
    observed: u64,
}

impl HeavyPairs {
    /// A detector tracking the top `capacity` pairs over a
    /// `cms_width × cms_depth` Count-Min sketch.
    pub fn new(capacity: usize, cms_width: usize, cms_depth: usize) -> Self {
        assert!(capacity >= 1, "need at least one tracked pair");
        HeavyPairs {
            cms: CountMinSketch::new(cms_width, cms_depth),
            capacity,
            candidates: FxHashMap::default(),
            threshold: 0,
            previous: FxHashMap::default(),
            observed: 0,
        }
    }

    /// Tracked-pair budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Candidate pairs currently held (≤ `4 × capacity`).
    pub fn candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Pair observations this epoch (with multiplicity).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Count every unordered tag pair of one arriving tagset.
    pub fn observe(&mut self, tags: &TagSet) {
        let slice = tags.tags();
        for (i, &a) in slice.iter().enumerate() {
            for &b in &slice[i + 1..] {
                let key = pair_key(a.0, b.0);
                self.observed += 1;
                let estimate = self.cms.add(key, 1);
                if estimate >= self.threshold || self.candidates.len() < 2 * self.capacity {
                    self.candidates.insert(key, estimate);
                    if self.candidates.len() > 4 * self.capacity {
                        self.prune();
                    }
                } else if let Some(slot) = self.candidates.get_mut(&key) {
                    *slot = estimate;
                }
            }
        }
    }

    /// Count-Min point estimate for a pair (0 = provably never co-occurred,
    /// since Count-Min never under-counts).
    pub fn estimate(&self, a: Tag, b: Tag) -> u64 {
        self.cms.query(pair_key(a.0, b.0))
    }

    /// Export the candidate pairs with their Count-Min counts, sorted by
    /// pair, for a live-migration handoff. Only the bounded candidate set
    /// travels; residual Count-Min mass outside it stays behind (the
    /// sketch's error remains one-sided: the receiver may under-*estimate*
    /// a non-candidate pair it later re-observes, never a tracked one).
    pub fn export_pairs(&self) -> Vec<(Tag, Tag, u64)> {
        let mut out: Vec<(Tag, Tag, u64)> = self
            .candidates
            .keys()
            .map(|&key| {
                let (a, b) = decode(key);
                (a, b, self.cms.query(key))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Merge one migrated pair count in: `n` co-occurrences folded into the
    /// sketch and the candidate set at once.
    pub fn adopt_pair(&mut self, a: Tag, b: Tag, n: u64) {
        if n == 0 {
            return;
        }
        let key = pair_key(a.0, b.0);
        self.observed += n;
        let estimate = self.cms.add(key, n);
        self.candidates.insert(key, estimate);
        if self.candidates.len() > 4 * self.capacity {
            self.prune();
        }
    }

    /// Drop the candidate pairs with a tag outside `keep` (the owner's tag
    /// set after a repartition). Their Count-Min mass remains until the
    /// next epoch roll — a one-sided residual, like any sketch collision.
    pub fn retain_tags(&mut self, keep: &FxHashSet<Tag>) {
        self.candidates.retain(|&key, _| {
            let (a, b) = decode(key);
            keep.contains(&a) && keep.contains(&b)
        });
    }

    /// Keep the heaviest `2 × capacity` candidates; the lightest survivor
    /// becomes the admission threshold.
    fn prune(&mut self) {
        let keep = 2 * self.capacity;
        let mut entries: Vec<(u64, u64)> = self.candidates.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        entries.truncate(keep);
        self.threshold = entries.last().map_or(0, |&(_, v)| v);
        self.candidates = entries.into_iter().collect();
    }

    /// The current top pairs, heaviest first (ties broken by pair id for
    /// determinism), at most `capacity` of them.
    pub fn top(&self) -> Vec<HeavyPair> {
        let mut entries: Vec<(u64, u64)> = self
            .candidates
            .iter()
            .map(|(&key, _)| (key, self.cms.query(key)))
            .collect();
        entries.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        entries.truncate(self.capacity);
        entries
            .into_iter()
            .map(|(key, count)| {
                let (a, b) = decode(key);
                HeavyPair { a, b, count }
            })
            .collect()
    }

    /// Close the epoch: score the top pairs against the previous epoch,
    /// remember their counts for the next comparison, and clear all
    /// counting state. Results are sorted by growth factor (then count),
    /// so brand-new heavy pairs — the emerging stories — lead.
    pub fn roll_epoch(&mut self) -> Vec<EmergingPair> {
        let top = self.top();
        let mut emerging: Vec<EmergingPair> = top
            .iter()
            .map(|pair| {
                let key = pair_key(pair.a.0, pair.b.0);
                let previous = self.previous.get(&key).copied().unwrap_or(0);
                EmergingPair {
                    pair: pair.clone(),
                    previous,
                    growth: pair.count as f64 / previous.max(1) as f64,
                }
            })
            .collect();
        emerging.sort_unstable_by(|x, y| {
            y.growth
                .partial_cmp(&x.growth)
                .expect("growth is finite")
                .then(y.pair.count.cmp(&x.pair.count))
                .then(x.pair.a.cmp(&y.pair.a))
                .then(x.pair.b.cmp(&y.pair.b))
        });
        self.previous = top
            .iter()
            .map(|p| (pair_key(p.a.0, p.b.0), p.count))
            .collect();
        let (width, depth) = self.cms.dims();
        self.cms = CountMinSketch::new(width, depth);
        self.candidates.clear();
        self.threshold = 0;
        self.observed = 0;
        emerging
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_ids(ids)
    }

    #[test]
    fn top_pairs_surface_the_heaviest() {
        let mut h = HeavyPairs::new(3, 512, 4);
        for _ in 0..50 {
            h.observe(&ts(&[1, 2]));
        }
        for _ in 0..30 {
            h.observe(&ts(&[3, 4]));
        }
        for _ in 0..5 {
            h.observe(&ts(&[5, 6]));
        }
        h.observe(&ts(&[7, 8]));
        let top = h.top();
        assert_eq!(top.len(), 3);
        assert_eq!((top[0].a, top[0].b), (Tag(1), Tag(2)));
        assert!(top[0].count >= 50, "CMS never under-counts");
        assert_eq!((top[1].a, top[1].b), (Tag(3), Tag(4)));
        assert_eq!((top[2].a, top[2].b), (Tag(5), Tag(6)));
    }

    #[test]
    fn larger_tagsets_contribute_all_pairs() {
        let mut h = HeavyPairs::new(10, 256, 4);
        h.observe(&ts(&[1, 2, 3]));
        assert_eq!(h.observed(), 3, "{{1,2}},{{1,3}},{{2,3}}");
        assert!(h.estimate(Tag(1), Tag(3)) >= 1);
        assert_eq!(h.estimate(Tag(4), Tag(5)), 0, "never observed");
    }

    #[test]
    fn candidate_set_stays_bounded() {
        let mut h = HeavyPairs::new(8, 1024, 4);
        for i in 0..2_000u32 {
            h.observe(&ts(&[2 * i, 2 * i + 1]));
        }
        assert!(
            h.candidates() <= 4 * 8,
            "candidates grew to {}",
            h.candidates()
        );
        // the repeatedly-hit pair must survive the churn
        for _ in 0..100 {
            h.observe(&ts(&[9_991, 9_992]));
        }
        let top = h.top();
        assert_eq!((top[0].a, top[0].b), (Tag(9_991), Tag(9_992)));
    }

    #[test]
    fn heavy_pairs_survive_prune_churn() {
        // a pair hit early and often must still rank top after thousands of
        // one-off pairs flow through the candidate set
        let mut h = HeavyPairs::new(4, 2048, 4);
        for _ in 0..200 {
            h.observe(&ts(&[1, 2]));
        }
        for i in 0..5_000u32 {
            h.observe(&ts(&[10 + 2 * i, 11 + 2 * i]));
        }
        for _ in 0..10 {
            h.observe(&ts(&[1, 2])); // re-touch after the churn
        }
        let top = h.top();
        assert_eq!((top[0].a, top[0].b), (Tag(1), Tag(2)));
        assert!(top[0].count >= 210);
    }

    #[test]
    fn roll_epoch_scores_emergence_and_resets() {
        let mut h = HeavyPairs::new(4, 512, 4);
        for _ in 0..40 {
            h.observe(&ts(&[1, 2]));
        }
        let first = h.roll_epoch();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].previous, 0, "first epoch: everything is new");
        assert!(first[0].growth >= 40.0);
        assert_eq!(h.observed(), 0, "epoch state cleared");
        assert!(h.top().is_empty());

        // next epoch: the old pair persists at similar volume, a new pair
        // bursts — the burst must outrank the steady pair
        for _ in 0..45 {
            h.observe(&ts(&[1, 2]));
        }
        for _ in 0..30 {
            h.observe(&ts(&[8, 9]));
        }
        let second = h.roll_epoch();
        assert_eq!(second.len(), 2);
        assert_eq!(
            (second[0].pair.a, second[0].pair.b),
            (Tag(8), Tag(9)),
            "brand-new pair leads on growth"
        );
        assert_eq!(second[1].previous, 40);
        assert!(second[1].growth < 2.0, "steady pair has ~1x growth");
    }

    #[test]
    fn tagset_roundtrip() {
        let p = HeavyPair {
            a: Tag(3),
            b: Tag(7),
            count: 5,
        };
        assert_eq!(p.tagset(), ts(&[3, 7]));
    }
}
