//! Exact-vs-approximate accuracy measurement.
//!
//! Feeds the same notification stream to the exact [`Calculator`] and an
//! [`ApproxCalculator`], then compares every pair coefficient the exact
//! backend tracked against the approximate estimate, accumulating the
//! comparison in a [`setcorr_metrics::ErrorStats`] — the same accumulator
//! the distributed pipeline uses for its Fig. 5 baseline comparison, so
//! approximate-backend error reports read identically to distributed-error
//! reports.

use crate::calculator::{ApproxCalculator, ApproxParams};
use setcorr_core::{Calculator, CorrelationBackend};
use setcorr_metrics::ErrorStats;
use setcorr_model::TagSet;

/// Run `tagsets` through both backends and compare all exact pair
/// coefficients of pairs seen at least `min_count` times.
///
/// `observe(Some(est), truth)` is recorded per covered pair and
/// `observe(None, truth)` per pair the approximate backend missed, so
/// [`ErrorStats::coverage`] doubles as a recall measure for the sketch path.
pub fn exact_vs_approx(tagsets: &[TagSet], params: ApproxParams, min_count: u64) -> ErrorStats {
    let mut exact = Calculator::new();
    let mut approx = ApproxCalculator::new(params);
    for tags in tagsets {
        CorrelationBackend::observe(&mut exact, tags);
        approx.observe(tags);
    }
    let mut stats = ErrorStats::new();
    for report in exact.report_and_reset() {
        if report.tags.len() != 2 || report.counter < min_count {
            continue;
        }
        stats.observe(approx.jaccard(&report.tags), report.jaccard);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_ids(ids)
    }

    #[test]
    fn perfect_streams_report_zero_error() {
        let stream: Vec<TagSet> = std::iter::repeat_n(ts(&[1, 2]), 200).collect();
        let stats = exact_vs_approx(&stream, ApproxParams::default(), 1);
        assert_eq!(stats.baseline_tagsets(), 1);
        assert!((stats.coverage() - 1.0).abs() < 1e-12);
        assert!(stats.mean_abs_error() < 1e-12, "J=1 is estimated exactly");
    }

    #[test]
    fn mixed_stream_stays_within_the_minhash_bound() {
        // three overlapping pair populations with distinct coefficients
        let mut stream: Vec<TagSet> = Vec::new();
        stream.extend(std::iter::repeat_n(ts(&[1, 2]), 400)); // J(1,2) ≈ 0.5
        stream.extend(std::iter::repeat_n(ts(&[1]), 200));
        stream.extend(std::iter::repeat_n(ts(&[2]), 200));
        stream.extend(std::iter::repeat_n(ts(&[3, 4]), 300)); // J(3,4) ≈ 0.75
        stream.extend(std::iter::repeat_n(ts(&[3]), 100));
        let stats = exact_vs_approx(&stream, ApproxParams::default(), 1);
        assert_eq!(stats.baseline_tagsets(), 2);
        assert_eq!(stats.coverage(), 1.0);
        assert!(
            stats.max_abs_error() < 0.05,
            "max error {} exceeds the k=256 budget",
            stats.max_abs_error()
        );
    }
}
