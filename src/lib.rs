//! # setcorr
//!
//! A Rust reproduction of **Alvanaki & Michel, "Tracking Set Correlations at
//! Large Scale" (SIGMOD 2014)**: continuous, distributed computation of
//! Jaccard coefficients between all co-occurring tags of a social-media
//! stream, by partitioning the tag universe over `k` Calculator nodes.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — tags, tagsets, documents, event time, sliding windows,
//! * [`core`] — the partitioning algorithms (DS / SCC / SCL / SCI) and the
//!   operator state machines (Calculator, Disseminator, Merger, Tracker),
//! * [`approx`] — the approximate correlation backend (MinHash signatures +
//!   Count-Min heavy-pair detection), pluggable behind
//!   [`core::CorrelationBackend`],
//! * [`engine`] — the Storm-like stream-processing substrate,
//! * [`topology`] — the full Figure 2 application and experiment driver,
//! * [`serve`] — the live serving layer: epoch-stamped snapshots published
//!   per report round, queried concurrently through [`serve::QueryHandle`],
//! * [`workload`] — the synthetic Twitter-like stream generator,
//! * [`theory`] — the §5 analytic models,
//! * [`metrics`] — Gini / dispersion / accuracy measurement.
//!
//! ## Quickstart
//!
//! ```
//! use setcorr::prelude::*;
//!
//! // A small synthetic stream...
//! let docs: Vec<Document> = Generator::new(WorkloadConfig::with_seed(7))
//!     .take(20_000)
//!     .collect();
//!
//! // ...run through the distributed topology with the DS algorithm:
//! let config = ExperimentConfig::for_algorithm(AlgorithmKind::Ds);
//! let report = run_docs(&config, docs, RunMode::Sim);
//!
//! assert!(report.avg_communication >= 1.0);
//! assert_eq!(report.k, 10);
//! ```

pub use setcorr_approx as approx;
pub use setcorr_core as core;
pub use setcorr_engine as engine;
pub use setcorr_metrics as metrics;
pub use setcorr_model as model;
pub use setcorr_serve as serve;
pub use setcorr_sketch as sketch;
pub use setcorr_theory as theory;
pub use setcorr_topology as topology;
pub use setcorr_workload as workload;

/// The names most programs need.
pub mod prelude {
    pub use setcorr_approx::{
        ApproxCalculator, ApproxParams, EmergingPair, HeavyPair, HeavyPairs, MinHashSignature,
        SignatureStore,
    };
    pub use setcorr_core::{
        best_partition_for_addition, partition, AlgorithmKind, Calculator, CoefficientReport,
        CorrelationBackend, Disseminator, DisseminatorConfig, Merger, PartitionInput, PartitionSet,
        QualityReference, RepartitionCause, TrackedCoefficient, Tracker,
    };
    pub use setcorr_engine::{RestartPolicy, RunError};
    pub use setcorr_metrics::{gini, ErrorStats, Running};
    pub use setcorr_model::{
        Document, Tag, TagInterner, TagSet, TagSetStat, TagSetWindow, TimeDelta, Timestamp,
        WindowKind,
    };
    pub use setcorr_serve::{DegradeFlag, QueryHandle, Snapshot};
    pub use setcorr_theory::{expected_communication, WindowScenario};
    pub use setcorr_topology::{
        bootstrap_partitions, connectivity, run, run_docs, run_served, spawn_served, BackendKind,
        ConnectivitySummary, ExperimentConfig, Fault, LiveRun, PinnedPartitions, RunMode,
        RunReport, Supervision,
    };
    pub use setcorr_workload::{Generator, WorkloadConfig};
}
