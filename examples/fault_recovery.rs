//! Supervised fault tolerance: kill a Calculator mid-stream and watch the
//! run recover to byte-identical output — then exhaust its restart budget
//! and watch the runtime degrade gracefully instead of hanging or lying.
//!
//! Three runs over the same pinned-control-plane stream:
//!
//! 1. the fault-free **sim oracle** (single-threaded, deterministic),
//! 2. a **threaded supervised** run with a seeded fault plan that kills
//!    Calculator 1 after its 10th message — the supervisor rebuilds it
//!    from its last round-fence checkpoint and replays the held
//!    messages, so the Tracker feed matches the oracle byte for byte,
//! 3. the same kill with a **zero restart budget** — the task tombstones,
//!    the survivors route around it, and the report discloses the
//!    degradation (`degraded_components`) instead of pretending the
//!    results are complete.
//!
//! Run with: `cargo run --release --example fault_recovery`
//!
//! Injected faults are real panics: the default panic hook prints each
//! one's backtrace to stderr before the supervisor catches it. That
//! noise is the fault firing, not the example failing.

use setcorr::prelude::*;

fn show(label: &str, r: &RunReport) {
    println!(
        "{label:<26} rounds={:<3} faults={} restarts={} replayed={} degraded={}",
        r.tracked_rounds.len(),
        r.faults_injected,
        r.tasks_restarted,
        r.rounds_replayed,
        r.degraded_components,
    );
}

fn main() {
    let docs: Vec<Document> = Generator::new(WorkloadConfig::with_seed(3))
        .take(30_000)
        .collect();

    // Pinned control plane (the equivalence-suite idiom): with the
    // bootstrap map fixed, drift frozen and Single Additions off, the
    // threaded run is byte-comparable to the sim oracle at the Tracker.
    let config = ExperimentConfig {
        algorithm: AlgorithmKind::Ds,
        k: 5,
        partitioners: 3,
        thr: 1_000.0,
        sn: u32::MAX,
        bootstrap_after: 1500,
        report_period: TimeDelta::from_secs(10),
        window: WindowKind::Time(TimeDelta::from_secs(10)),
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Ds)
    };
    let pinned = bootstrap_partitions(&config, &docs);
    let config = config.with_pinned_partitions(pinned);

    let oracle = run_docs(&config, docs.clone(), RunMode::Sim);
    show("sim oracle (fault-free)", &oracle);

    // Kill Calculator 1 after its 10th message; default budget allows
    // two restarts, so the supervisor checkpoint-restores and replays.
    let recovered = run_docs(
        &config.clone().with_supervision(Supervision {
            faults: vec![Fault::KillCalculator {
                task: 1,
                after_messages: 10,
            }],
            ..Supervision::default()
        }),
        docs.clone(),
        RunMode::Threaded,
    );
    show("threaded, kill+recover", &recovered);
    assert_eq!(
        format!("{:?}", recovered.tracked_rounds),
        format!("{:?}", oracle.tracked_rounds),
        "recovery within budget must be byte-identical to the oracle"
    );
    println!("  -> Tracker feed byte-identical to the fault-free oracle");

    // Same kill, zero restart budget: the task degrades to a tombstone,
    // the run still terminates, and the loss is disclosed.
    let degraded = run_docs(
        &config.clone().with_supervision(Supervision {
            max_restarts: 0,
            faults: vec![Fault::KillCalculator {
                task: 1,
                after_messages: 10,
            }],
            ..Supervision::default()
        }),
        docs,
        RunMode::Threaded,
    );
    show("threaded, budget exhausted", &degraded);
    assert!(degraded.degraded_components >= 1);
    println!("  -> run terminated, degradation disclosed in the report");
}
