//! Emergent-trend detection on top of the tracked correlations.
//!
//! The paper positions continuous Jaccard tracking as the substrate for
//! trend mining (its authors' enBlogue system scores a trend by the
//! *prediction error* of tagset correlations). This example rebuilds that
//! consumer: it runs the distributed pipeline, then flags the tagsets whose
//! Jaccard coefficient jumped the most between consecutive report rounds.
//!
//! ```sh
//! cargo run --release --example trend_detection
//! ```

use setcorr::model::FxHashMap;
use setcorr::prelude::*;

/// One emergent-correlation event.
struct Shift {
    round: u64,
    tags: TagSet,
    from: f64,
    to: f64,
    support: u64,
}

fn main() {
    // A drifting, bursty stream — trends are what we want to surface.
    let mut workload = WorkloadConfig::with_seed(99);
    workload.trend_every = Some(2_000);
    workload.burst_every = Some(600);
    let mut generator = Generator::new(workload);
    let docs: Vec<Document> = (&mut generator).take(150_000).collect();

    let config = ExperimentConfig {
        algorithm: AlgorithmKind::Ds,
        k: 8,
        partitioners: 4,
        report_period: TimeDelta::from_secs(15),
        window: WindowKind::Time(TimeDelta::from_secs(15)),
        bootstrap_after: 2000,
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Ds)
    };
    let report = run_docs(&config, docs, RunMode::Sim);
    println!(
        "{} report rounds, {} coefficients total",
        report.tracked_rounds.len(),
        report
            .tracked_rounds
            .iter()
            .map(|(_, c)| c.len())
            .sum::<usize>()
    );

    // enBlogue-style shift scoring: |J_round − J_previous| per tagset,
    // restricted to tagsets with enough support in the current round.
    let mut previous: FxHashMap<TagSet, f64> = FxHashMap::default();
    let mut shifts: Vec<Shift> = Vec::new();
    for (round, coeffs) in &report.tracked_rounds {
        let mut current: FxHashMap<TagSet, f64> = FxHashMap::default();
        for c in coeffs {
            current.insert(c.tags.clone(), c.jaccard);
            if c.counter < 5 {
                continue;
            }
            let from = previous.get(&c.tags).copied().unwrap_or(0.0);
            if (c.jaccard - from).abs() > 0.25 {
                shifts.push(Shift {
                    round: *round,
                    tags: c.tags.clone(),
                    from,
                    to: c.jaccard,
                    support: c.counter,
                });
            }
        }
        previous = current;
    }

    shifts.sort_by(|a, b| {
        (b.to - b.from)
            .abs()
            .partial_cmp(&(a.to - a.from).abs())
            .unwrap()
    });
    println!("\nemergent correlations (Jaccard shift > 0.25 between rounds):");
    println!(
        "{:>6} {:>32} {:>8} {:>8} {:>8}",
        "round", "tagset", "J(prev)", "J(now)", "support"
    );
    for s in shifts.iter().take(20) {
        let names: Vec<&str> = s
            .tags
            .iter()
            .map(|t| generator.interner().try_name(t).unwrap_or("?"))
            .collect();
        println!(
            "{:>6} {:>32} {:>8.3} {:>8.3} {:>8}",
            s.round,
            names.join(","),
            s.from,
            s.to,
            s.support
        );
    }
    if shifts.is_empty() {
        println!("  (none — try a burstier workload)");
    }
}
