//! Run the full Figure 2 topology on the *threaded* runtime: one OS thread
//! per operator task (1 source + 1 parser + P partitioners + 1 merger +
//! 1 disseminator + k calculators + 1 tracker + 1 baseline), communicating
//! over bounded channels with backpressure — the closest local equivalent of
//! the paper's 26-node Storm cluster.
//!
//! ```sh
//! cargo run --release --example distributed_pipeline
//! ```

use setcorr::prelude::*;
use std::time::Instant;

fn main() {
    let docs: Vec<Document> = Generator::new(WorkloadConfig::with_seed(3))
        .take(200_000)
        .collect();
    let n_docs = docs.len();

    let config = ExperimentConfig {
        algorithm: AlgorithmKind::Scl, // the load-balancing specialist
        k: 10,
        partitioners: 5,
        report_period: TimeDelta::from_secs(20),
        window: WindowKind::Time(TimeDelta::from_secs(20)),
        bootstrap_after: 3000,
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Scl)
    };
    println!(
        "topology: 1 source + 1 parser + {} partitioners + 1 merger + 1 disseminator \
         + {} calculators + 1 tracker + 1 baseline = {} threads",
        config.partitioners,
        config.k,
        6 + config.partitioners + config.k
    );

    let t0 = Instant::now();
    let report = run_docs(&config, docs, RunMode::Threaded);
    let elapsed = t0.elapsed();

    println!(
        "\nprocessed {} documents in {:.2?} ({:.0} docs/s wall)",
        n_docs,
        elapsed,
        n_docs as f64 / elapsed.as_secs_f64()
    );
    println!(
        "communication: {:.3} notifications per routed tagset",
        report.avg_communication
    );
    print!("load shares per calculator:");
    for share in &report.load_shares {
        print!(" {:.3}", share);
    }
    println!(
        "\nload gini: {:.3} (SCL keeps this near zero)",
        report.load_gini
    );
    println!(
        "repartitions: {} ({} communication / {} both / {} load)",
        report.repartitions_total(),
        report.repartitions_communication,
        report.repartitions_both,
        report.repartitions_load
    );
    println!(
        "accuracy: {:.1}% coverage, {:.4} mean abs error over {} eligible tagsets",
        report.coverage * 100.0,
        report.mean_abs_error,
        report.compared_tagsets
    );
}
