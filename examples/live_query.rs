//! Live queries against a running topology.
//!
//! Spawns the full distributed topology on its own thread
//! (`spawn_served`), then polls the serving layer from the main thread
//! while documents are still streaming in: global top-k by Jaccard,
//! per-tag neighborhoods, exact coefficient lookups, and snapshot
//! staleness. Every visible snapshot is a whole finalized round — the
//! serving layer never exposes a round mid-fence.
//!
//! ```sh
//! cargo run --release --example live_query
//! ```

use setcorr::prelude::*;
use std::time::Duration;

fn main() {
    // A deterministic synthetic stream: ~90 seconds of tweets at 1300/s.
    let workload = WorkloadConfig::with_seed(7);
    let docs = Generator::new(workload).take(120_000);

    let config = ExperimentConfig {
        algorithm: AlgorithmKind::Ds,
        k: 5,
        partitioners: 3,
        report_period: TimeDelta::from_secs(20),
        window: WindowKind::Time(TimeDelta::from_secs(20)),
        bootstrap_after: 2000,
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Ds)
    };

    // Run on the threaded runtime, keeping a handle into the snapshot store.
    let live = spawn_served(&config, Box::new(docs), RunMode::Threaded);
    let handle: QueryHandle = live.query_handle();

    // Poll while the run is in flight. Each `snapshot()` is an Arc clone
    // under a read lock — it never blocks the Tracker's publications.
    let mut last_seq = 0;
    while !live.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
        let snap = handle.snapshot();
        if snap.seq() == last_seq || snap.is_empty() {
            continue; // nothing new published since the last poll
        }
        last_seq = snap.seq();

        let round = snap.round().expect("non-empty snapshots carry a round");
        println!(
            "\nround {round} (publication #{}, {} tracked tagsets, {} behind head):",
            snap.seq(),
            snap.len(),
            handle.staleness(&snap)
        );
        for c in snap.top_k(5) {
            println!(
                "  {}  jaccard {:.3}  count {}",
                c.tags, c.jaccard, c.counter
            );
        }

        // Drill into the strongest correlation's neighborhood: every other
        // tracked tagset sharing a tag with it, strongest first.
        if let Some(best) = snap.top_k(1).next() {
            let tag = best.tags.iter().next().expect("tagsets are non-empty");
            let around = snap.neighbor_count(tag);
            println!("  neighborhood of tag {tag} ({around} tagsets):");
            for c in snap.neighbors(tag, 3) {
                println!("    {}  jaccard {:.3}", c.tags, c.jaccard);
            }
            // Exact lookup round-trips through the sorted storage.
            let exact = snap.coefficient(&best.tags).expect("best is tracked");
            assert_eq!(exact, best);
        };
    }

    let report = live.finish();
    println!(
        "\nrun complete: {} rounds published, {} reader acquisitions, \
         {:.1} ms total snapshot build time",
        report.snapshots_published,
        report.reader_acquisitions,
        report.snapshot_build_seconds * 1e3
    );
}
