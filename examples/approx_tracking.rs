//! Top-k emerging-pair detection with the approximate backend.
//!
//! Streams the synthetic Twitter-like workload through one
//! [`ApproxCalculator`] in report rounds, printing the heaviest co-occurring
//! tag pairs of each round and — from the second round on — which of them
//! are *emerging*: brand new or sharply grown versus the previous round.
//! This is the enBlogue-style use the paper motivates, at `O(tags × k)`
//! memory instead of one counter per observed subset.
//!
//! Run with: `cargo run --release --example approx_tracking`

use setcorr::prelude::*;

fn main() {
    let rounds = 6usize;
    let docs_per_round = 20_000usize;

    let mut config = WorkloadConfig::with_seed(77);
    // drift + bursts make pairs actually emerge
    config.new_topic_every = Some(4_000);
    config.burst_every = Some(500);
    let mut generator = Generator::new(config);

    let mut approx = ApproxCalculator::new(ApproxParams {
        top_k: 64,
        ..ApproxParams::default()
    });
    let mut exact_check = Calculator::new();

    println!(
        "approximate backend: {} hashes, top-{} pairs\n",
        approx.params().hashes,
        approx.params().top_k
    );

    for round in 0..rounds {
        let mut tagged = 0u64;
        for _ in 0..docs_per_round {
            let Some(doc) = generator.next() else { break };
            if !doc.is_tagged() {
                continue;
            }
            tagged += 1;
            CorrelationBackend::observe(&mut approx, &doc.tags);
            CorrelationBackend::observe(&mut exact_check, &doc.tags);
        }

        // compare the five heaviest estimates against exact values before
        // the round closes
        let mut spot_checks: Vec<(TagSet, f64, Option<f64>)> = approx
            .heavy()
            .top()
            .into_iter()
            .take(5)
            .filter_map(|pair| {
                let ts = pair.tagset();
                let est = CorrelationBackend::jaccard(&approx, &ts)?;
                Some((
                    ts.clone(),
                    est,
                    CorrelationBackend::jaccard(&exact_check, &ts),
                ))
            })
            .collect();
        spot_checks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        let reports = CorrelationBackend::report_and_reset(&mut approx);
        CorrelationBackend::report_and_reset(&mut exact_check);

        println!(
            "── round {round}: {tagged} tagged docs, {} heavy pairs reported",
            reports.len()
        );
        for (ts, est, exact) in &spot_checks {
            let names: Vec<&str> = ts.iter().map(|t| generator.interner().name(t)).collect();
            match exact {
                Some(truth) => println!(
                    "   J̃({}) = {est:.3}   (exact {truth:.3}, |Δ| = {:.3})",
                    names.join(", "),
                    (est - truth).abs()
                ),
                None => println!(
                    "   J̃({}) = {est:.3}   (exact: not co-occurring)",
                    names.join(", ")
                ),
            }
        }
        let emerging: Vec<_> = approx
            .emerging()
            .iter()
            .filter(|e| e.previous == 0 || e.growth >= 2.0)
            .take(5)
            .cloned()
            .collect();
        if round > 0 && !emerging.is_empty() {
            println!("   emerging:");
            for e in &emerging {
                let ts = e.pair.tagset();
                let names: Vec<&str> = ts.iter().map(|t| generator.interner().name(t)).collect();
                let provenance = if e.previous == 0 {
                    "new this round".to_string()
                } else {
                    format!("{:.1}x over previous round", e.growth)
                };
                println!(
                    "     {{{}}}  ~{} co-occurrences  ({provenance})",
                    names.join(", "),
                    e.pair.count
                );
            }
        }
        println!();
    }
}
