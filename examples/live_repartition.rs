//! A quality-triggered live repartition, mid-stream, on the threaded
//! runtime.
//!
//! Runs the full Figure 2 topology with an aggressive drift threshold
//! (`thr = 0.1`), so the Disseminator's `QualityMonitor` requests new
//! partitions while the stream is flowing. With live migration on (the
//! default), each install is fenced to the Calculators, which hand their
//! per-tag tracking state — exact subset counters here — to the new
//! owners, so no round's evidence is stranded or double-counted. The same
//! stream is then replayed with migration off and with a frozen partition
//! map, to show what the handoff buys.
//!
//! Run with: `cargo run --release --example live_repartition`

use setcorr::prelude::*;

fn stream() -> Vec<Document> {
    let mut config = WorkloadConfig::with_seed(2014);
    config.new_topic_every = Some(8_000); // drift forces routing decay
    Generator::new(config).take(60_000).collect()
}

fn config(thr: f64, live: bool) -> ExperimentConfig {
    ExperimentConfig {
        algorithm: AlgorithmKind::Ds,
        k: 5,
        partitioners: 3,
        thr,
        bootstrap_after: 3_000,
        report_period: TimeDelta::from_secs(10),
        window: WindowKind::Time(TimeDelta::from_secs(10)),
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Ds)
    }
    .with_live_migration(live)
}

fn show(label: &str, report: &RunReport) {
    println!(
        "{label:<28} repartitions={:<2} live={:<2} migrated_units={:<6} \
         stalled={:<5} coverage={:.3} mean_abs_error={:.4}",
        report.repartitions_total(),
        report.live_repartitions,
        report.migrated_units,
        report.stalled_tuples,
        report.coverage,
        report.mean_abs_error,
    );
}

fn main() {
    let docs = stream();
    println!(
        "streaming {} documents through k=5 Calculators (threaded runtime)\n",
        docs.len()
    );

    // The paper's elastic system: drift triggers repartitions, state moves.
    let live = run_docs(&config(0.1, true), docs.clone(), RunMode::Threaded);
    show("live repartitioning", &live);
    for (x, cause) in &live.repartition_marks {
        println!("    repartition after {x} routed tagsets ({cause})");
    }

    // Same repartitions, but state stays behind (pre-PR-2 behaviour).
    let offline = run_docs(&config(0.1, false), docs.clone(), RunMode::Threaded);
    show("repartition w/o migration", &offline);

    // No repartitions at all: the map the bootstrap produced, forever.
    let frozen = run_docs(&config(1_000.0, true), docs, RunMode::Threaded);
    show("frozen bootstrap map", &frozen);

    println!(
        "\nlive repartitioning kept accuracy at the frozen-map level \
         ({:.4} vs {:.4}) while adapting the map {} time(s) mid-stream",
        live.mean_abs_error, frozen.mean_abs_error, live.live_repartitions,
    );
}
