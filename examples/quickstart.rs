//! Quickstart: track set correlations over a synthetic social-media stream.
//!
//! Generates a Twitter-like stream, runs the full distributed topology
//! (Parser → Partitioner×P → Merger → Disseminator → Calculator×k →
//! Tracker) with the Disjoint Sets algorithm, and prints the most strongly
//! correlated co-occurring tagsets of the final report round.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use setcorr::prelude::*;

fn main() {
    // 1. A deterministic synthetic stream: ~90 seconds of tweets at 1300/s.
    let workload = WorkloadConfig::with_seed(7);
    let mut generator = Generator::new(workload);
    let docs: Vec<Document> = (&mut generator).take(120_000).collect();
    println!(
        "stream: {} documents, {} distinct tags",
        docs.len(),
        generator.distinct_tags()
    );

    // 2. Configure the system: 5 Calculators, 3 Partitioners, DS algorithm,
    //    20-second report periods / partition windows.
    let config = ExperimentConfig {
        algorithm: AlgorithmKind::Ds,
        k: 5,
        partitioners: 3,
        report_period: TimeDelta::from_secs(20),
        window: WindowKind::Time(TimeDelta::from_secs(20)),
        bootstrap_after: 2000,
        ..ExperimentConfig::for_algorithm(AlgorithmKind::Ds)
    };

    // 3. Run on the deterministic simulation runtime.
    let report = run_docs(&config, docs, RunMode::Sim);

    println!(
        "routed {} tagsets with avg communication {:.3} (1.0 = no replication)",
        report.routed_tagsets, report.avg_communication
    );
    println!(
        "load gini {:.3}, {} repartitions, {} single additions",
        report.load_gini,
        report.repartition_marks.len(),
        report.single_additions
    );
    println!(
        "accuracy vs centralized baseline: {:.1}% coverage, {:.4} mean abs error",
        report.coverage * 100.0,
        report.mean_abs_error
    );

    // 4. The Tracker output: strongest correlations of the last full round.
    let Some((round, coeffs)) = report
        .tracked_rounds
        .iter()
        .rev()
        .find(|(_, coeffs)| !coeffs.is_empty())
    else {
        println!("no coefficients were produced");
        return;
    };
    let mut top: Vec<_> = coeffs
        .iter()
        .filter(|c| c.counter >= 5) // enough support to be interesting
        .collect();
    top.sort_by(|a, b| b.jaccard.partial_cmp(&a.jaccard).unwrap());
    println!("\nstrongest correlations in round {round}:");
    println!("{:>32} {:>9} {:>7}", "tagset", "Jaccard", "count");
    for c in top.iter().take(15) {
        let names: Vec<&str> = c
            .tags
            .iter()
            .map(|t| generator.interner().try_name(t).unwrap_or("?"))
            .collect();
        println!(
            "{:>32} {:>9.3} {:>7}",
            names.join(","),
            c.jaccard,
            c.counter
        );
    }
}
