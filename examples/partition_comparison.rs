//! Compare the four partitioning algorithms of §4 on one window snapshot,
//! next to the §5.2 analytic expectation for random partitions.
//!
//! ```sh
//! cargo run --release --example partition_comparison
//! ```

use setcorr::core::{connected_components, partition, AlgorithmKind, PartitionInput};
use setcorr::model::TagSetStat;
use setcorr::prelude::*;
use setcorr::theory::expected_communication;

fn main() {
    // One partition window: ~20 seconds of tweets at 1300/s.
    let generator = Generator::new(WorkloadConfig::with_seed(5));
    let stats: Vec<TagSetStat> = generator
        .filter(|d| d.is_tagged())
        .take(13_000)
        .map(|d| TagSetStat {
            tags: d.tags,
            count: 1,
        })
        .collect();
    let input = PartitionInput::from_stats(stats);
    let components = connected_components(&input);
    let connectivity = components.report();
    println!(
        "window: {} docs, {} distinct tagsets, {} distinct tags",
        input.total_docs,
        input.len(),
        input.distinct_tags()
    );
    println!(
        "tag graph: {} disjoint sets; largest holds {:.1}% of tags / {:.1}% of docs\n",
        connectivity.n_components,
        connectivity.max_tag_share * 100.0,
        connectivity.max_doc_share * 100.0
    );

    let k = 10;
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>13} {:>10}",
        "algo", "avg comm", "max load", "gini", "replication", "uncovered"
    );
    for algorithm in AlgorithmKind::ALL {
        let partitions = partition(algorithm, &input, k, 42);
        let quality = partitions.evaluate(&input);
        println!(
            "{:>5} {:>12.3} {:>10.3} {:>10.3} {:>13.3} {:>10}",
            algorithm.name(),
            quality.avg_communication,
            quality.max_load_share,
            quality.load_gini,
            partitions.replication_factor(),
            quality.uncovered_tagsets
        );
    }

    // §5.2: what *random* equal-sized partitions would cost on this window.
    let v = input.distinct_tags() as u64;
    let n = input.total_docs;
    let m = 2; // typical tagged tweet carries ~2 tags
    println!(
        "\n§5.2 analytic E[comm] for random partitions (v={v}, n={n}, k={k}, m={m}): {:.3}",
        expected_communication(v, n, k as u64, m)
    );
    println!(
        "(the communication-minded algorithms beat the random bound; SCL exceeds it\n\
         deliberately — it spends replication to buy its near-zero load Gini)"
    );
}
